#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace hlock::net {

EventLoop::EventLoop() : epoch_(std::chrono::steady_clock::now()) {
  if (::pipe(wake_fds_) != 0)
    throw std::system_error(errno, std::generic_category(), "pipe");
  for (const int fd : wake_fds_) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  }
}

EventLoop::~EventLoop() {
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
}

void EventLoop::watch(int fd, short events, IoFn fn) {
  watches_[fd] = {events, std::move(fn)};
}

void EventLoop::unwatch(int fd) { watches_.erase(fd); }

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> guard(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const char byte = 1;
  // A full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], &byte, 1);
}

void EventLoop::schedule(Duration delay, std::function<void()> fn) {
  timers_.push(Timer{now() + delay, timer_seq_++, std::move(fn)});
}

std::uint64_t EventLoop::schedule_cancellable(Duration delay,
                                              std::function<void()> fn) {
  const std::uint64_t id = timer_seq_++;
  timers_.push(Timer{now() + delay, id, std::move(fn)});
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) {
  if (id < timer_seq_) cancelled_timers_.insert(id);
}

TimePoint EventLoop::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard<std::mutex> guard(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::fire_due_timers() {
  while (!timers_.empty() && timers_.top().due <= now()) {
    auto fn = timers_.top().fn;
    const std::uint64_t id = timers_.top().seq;
    timers_.pop();
    if (cancelled_timers_.erase(id) != 0) continue;
    fn();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return 500;
  const Duration us = timers_.top().due - now();
  if (us <= 0) return 0;
  const Duration ms = us / 1000 + 1;
  return ms > 500 ? 500 : static_cast<int>(ms);
}

bool EventLoop::on_loop_thread() const {
  return running_.load() && loop_thread_.load() == std::this_thread::get_id();
}

void EventLoop::run() {
  loop_thread_.store(std::this_thread::get_id());
  running_.store(true);
  while (!stop_requested_.load()) {
    std::vector<pollfd> fds;
    fds.push_back({wake_fds_[0], POLLIN, 0});
    std::vector<int> order;
    for (const auto& [fd, w] : watches_) {
      fds.push_back({fd, w.first, 0});
      order.push_back(fd);
    }
    const int rc = ::poll(fds.data(), fds.size(), next_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "poll");
    }
    if (fds[0].revents & POLLIN) {
      char sink[256];
      while (::read(wake_fds_[0], sink, sizeof sink) > 0) {
      }
    }
    drain_posted();
    fire_due_timers();
    for (std::size_t i = 0; i < order.size(); ++i) {
      const short revents = fds[i + 1].revents;
      if (revents == 0) continue;
      // The callback may unwatch/close fds; re-check registration.
      const auto it = watches_.find(order[i]);
      if (it == watches_.end()) continue;
      auto fn = it->second.second;
      // POLLNVAL means the fd was closed while still watched (a stale
      // registration). Drop the watch before dispatching so a callback
      // that no longer recognises the fd cannot leave the loop spinning
      // on an invalid pollfd forever.
      if (revents & POLLNVAL) unwatch(order[i]);
      fn(static_cast<std::uint32_t>(revents));
    }
  }
  drain_posted();
  running_.store(false);
  stop_requested_.store(false);
}

void EventLoop::stop() {
  stop_requested_.store(true);
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], &byte, 1);
}

}  // namespace hlock::net
