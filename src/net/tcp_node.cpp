#include "net/tcp_node.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "common/logging.hpp"

namespace hlock::net {

namespace {

constexpr auto kRelax = std::memory_order_relaxed;

void set_nonblocking(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Constructor-time failures only (bad port, fd exhaustion at startup):
/// these are configuration errors surfaced to the caller before the loop
/// runs, not runtime faults.
[[noreturn]] void sys_fail(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void bump_max(std::atomic<std::uint64_t>& hw, std::uint64_t v) {
  if (v > hw.load(kRelax)) hw.store(v, kRelax);
}

/// Boot epoch for this process: wall-clock nanoseconds mixed with
/// hardware entropy, forced nonzero (0 on the wire means "legacy peer,
/// no epoch"). Two incarnations of the same node id colliding would need
/// both the clock and random_device to repeat.
std::uint64_t generate_epoch() {
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
  std::random_device rd;
  std::uint64_t e = static_cast<std::uint64_t>(ns);
  e ^= (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  return e == 0 ? 1 : e;
}

/// frames_per_batch bucket for a writev that gathered `n` frames.
std::size_t batch_bucket(int n) {
  if (n <= 1) return 0;
  if (n <= 4) return 1;
  if (n <= 16) return 2;
  return 3;
}

void store_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

}  // namespace

TcpNode::TcpNode(NodeId self, std::uint16_t port, TcpConfig cfg)
    : self_(self), cfg_(cfg), epoch_(generate_epoch()), transport_(*this) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    sys_fail("bind");
  if (::listen(listen_fd_, 128) != 0) sys_fail("listen");
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  loop_.watch(listen_fd_, POLLIN, [this](std::uint32_t) { on_listen_ready(); });
  // The heartbeat timer is armed from inside the loop once it runs; the
  // constructor may be on any thread.
  loop_.post([this] { arm_heartbeat(); });
}

TcpNode::~TcpNode() {
  for (auto& [fd, c] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpNode::set_peers(std::map<NodeId, PeerAddress> peers) {
  loop_.post([this, peers = std::move(peers)]() mutable {
    peers_ = std::move(peers);
    // Seed the failure detector: a peer we never hear from at all gets a
    // full suspect_timeout of grace from this moment, not from epoch 0.
    const TimePoint t = loop_.now();
    for (const auto& [peer, address] : peers_) last_heard_.emplace(peer, t);
    // Peers dropped from the book must not be re-dialed by a timer armed
    // under the old book.
    for (auto& [peer, d] : dial_) {
      if (peers_.count(peer) == 0 && d.timer_pending) {
        loop_.cancel_timer(d.timer_id);
        d.timer_pending = false;
      }
    }
    // Deterministic mesh: the higher id dials the lower, so each pair has
    // exactly one connection and per-pair FIFO ordering holds.
    for (const auto& [peer, address] : peers_) {
      if (peer < self_) maybe_dial(peer);
    }
  });
}

void TcpNode::set_handler(std::function<void(const Message&)> fn) {
  if (loop_.on_loop_thread() || !loop_.running()) {
    // Safe to assign directly: either we ARE the loop thread (no delivery
    // can be concurrent with us) or nothing is being delivered at all.
    handler_ = std::move(fn);
    return;
  }
  loop_.post([this, fn = std::move(fn)]() mutable {
    handler_ = std::move(fn);
  });
}

void TcpNode::set_on_peer_suspected(std::function<void(NodeId, bool)> fn) {
  if (loop_.on_loop_thread() || !loop_.running()) {
    on_suspect_ = std::move(fn);
    return;
  }
  loop_.post([this, fn = std::move(fn)]() mutable {
    on_suspect_ = std::move(fn);
  });
}

void TcpNode::set_control_handler(
    std::function<void(NodeId, const DecodedFrame&)> fn) {
  if (loop_.on_loop_thread() || !loop_.running()) {
    control_handler_ = std::move(fn);
    return;
  }
  loop_.post([this, fn = std::move(fn)]() mutable {
    control_handler_ = std::move(fn);
  });
}

void TcpNode::send_control(NodeId to, std::vector<std::uint8_t> bytes) {
  loop_.post([this, to, bytes = std::move(bytes)]() mutable {
    Connection* c = established_conn(to);
    if (c == nullptr) {
      // No link: the frame is dropped (control traffic is fire-and-forget
      // at this layer; the view coordinator retries on its own timer) but
      // kick a dial so a retry can land.
      maybe_dial(to);
      return;
    }
    queue_frame(*c, std::move(bytes), /*control=*/true);
    request_flush(*c);
  });
}

void TcpNode::forget_peer(NodeId peer) {
  loop_.post([this, peer] {
    // Drop the address book entry first: close_conn below consults it to
    // decide whether to schedule a re-dial.
    peers_.erase(peer);
    std::vector<int> doomed;
    for (const auto& [fd, c] : conns_)
      if (c->peer == peer) doomed.push_back(fd);
    for (const int fd : doomed) close_conn(fd);
    const auto dit = dial_.find(peer);
    if (dit != dial_.end()) {
      if (dit->second.timer_pending) loop_.cancel_timer(dit->second.timer_id);
      dial_.erase(dit);
    }
    const auto sit = send_.find(peer);
    if (sit != send_.end()) {
      unacked_frames_.fetch_sub(sit->second.window.size(), kRelax);
      send_.erase(sit);
    }
    if (cfg_.send_window_limit != 0) {
      std::lock_guard<std::mutex> lk(window_mu_);
      window_pending_.erase(peer);
    }
    recv_seq_.erase(peer);
    peer_epoch_.erase(peer);
    ever_connected_.erase(peer);
    last_heard_.erase(peer);
    if (suspected_.erase(peer) != 0)
      suspected_count_.store(suspected_.size(), kRelax);
  });
}

void TcpNode::on_listen_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // Transient accept failure (EMFILE, ECONNABORTED, ...): keep the
      // node alive, retry on the next readiness event.
      HLOCK_LOG(kError, "node " << self_ << ": accept failed: "
                                << std::strerror(errno));
      return;
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conns_.emplace(fd, std::move(conn));
    established(*raw, /*outbound=*/false);
  }
}

void TcpNode::maybe_dial(NodeId peer) {
  if (!(peer < self_)) return;  // the higher id dials; we wait for them
  if (peers_.find(peer) == peers_.end()) return;
  auto& d = dial_[peer];
  if (d.fd >= 0 || peer_fd_.count(peer) != 0) return;  // busy or connected
  if (d.timer_pending) return;  // a backoff re-dial is already queued
  start_dial(peer);
}

void TcpNode::start_dial(NodeId peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  auto& d = dial_[peer];
  if (d.fd >= 0 || peer_fd_.count(peer) != 0) return;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(it->second.port);
  if (::inet_pton(AF_INET, it->second.host.c_str(), &addr.sin_addr) != 1) {
    HLOCK_LOG(kError, "node " << self_ << ": bad host for peer " << peer
                              << ": '" << it->second.host << "'");
    ++d.failures;
    stats_.connect_failures.fetch_add(1, kRelax);
    schedule_redial(peer);  // the book may be corrected via set_peers
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    ++d.failures;
    stats_.connect_failures.fetch_add(1, kRelax);
    schedule_redial(peer);
    return;
  }
  set_nonblocking(fd);
  set_nodelay(fd);
  stats_.dials.fetch_add(1, kRelax);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    ++d.failures;
    stats_.connect_failures.fetch_add(1, kRelax);
    schedule_redial(peer);
    return;
  }
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->peer = peer;
  conn->connecting = true;
  conn->last_recv = conn->last_send = loop_.now();
  Connection* raw = conn.get();
  conns_.emplace(fd, std::move(conn));
  d.fd = fd;
  if (rc == 0) {
    established(*raw, /*outbound=*/true);
    return;
  }
  loop_.watch(fd, POLLOUT, [this, fd](std::uint32_t revents) {
    on_connect_ready(fd, revents);
  });
}

void TcpNode::on_connect_ready(int fd, std::uint32_t revents) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  if (!c.connecting) {  // raced with establishment; treat as normal I/O
    on_conn_event(fd, revents);
    return;
  }
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) err = errno;
  if (err != 0 || (revents & (POLLERR | POLLNVAL)) != 0) {
    HLOCK_LOG(kDebug, "node " << self_ << ": connect to peer " << c.peer
                              << " failed: " << std::strerror(err));
    fail_dial(c.peer);
    return;
  }
  established(c, /*outbound=*/true);
}

void TcpNode::fail_dial(NodeId peer) {
  auto& d = dial_[peer];
  if (d.fd >= 0) {
    loop_.unwatch(d.fd);
    ::close(d.fd);
    conns_.erase(d.fd);
    d.fd = -1;
  }
  ++d.failures;
  stats_.connect_failures.fetch_add(1, kRelax);
  schedule_redial(peer);
}

void TcpNode::schedule_redial(NodeId peer) {
  auto& d = dial_[peer];
  if (d.timer_pending || d.fd >= 0 || peer_fd_.count(peer) != 0) return;
  // Capped exponential backoff: min * 2^(failures-1), clamped to max.
  Duration delay = cfg_.reconnect_min > 0 ? cfg_.reconnect_min : msec(1);
  const Duration cap =
      cfg_.reconnect_max > delay ? cfg_.reconnect_max : delay;
  for (std::uint32_t i = 1; i < d.failures && delay < cap; ++i) delay *= 2;
  delay = std::min(delay, cap);
  d.timer_pending = true;
  d.timer_id = loop_.schedule_cancellable(delay, [this, peer] {
    const auto it = dial_.find(peer);
    if (it == dial_.end()) return;
    it->second.timer_pending = false;
    if (it->second.fd >= 0 || peer_fd_.count(peer) != 0) return;
    start_dial(peer);
  });
}

void TcpNode::established(Connection& c, bool outbound) {
  const int fd = c.fd;
  c.connecting = false;
  c.last_recv = c.last_send = loop_.now();
  loop_.watch(fd, POLLIN, [this, fd](std::uint32_t revents) {
    on_conn_event(fd, revents);
  });
  if (outbound) {
    stats_.connects.fetch_add(1, kRelax);
    // Backoff state (failures) resets only on the peer's hello: a listener
    // that accepts and then drops us pre-handshake (half-configured proxy,
    // crashing peer) must keep escalating the redial delay.
    dial_[c.peer].fd = -1;
    register_peer(c.peer, fd);
  } else {
    stats_.accepts.fetch_add(1, kRelax);
  }
  queue_frame(c, hello_frame(self_, epoch_), /*control=*/true);
  if (outbound) {
    resend_window(c);  // flushes when the peer's window was non-empty
    if (conns_.find(fd) == conns_.end()) return;  // flush may have closed
  }
  flush(c);
}

void TcpNode::register_peer(NodeId peer, int fd) {
  const auto it = peer_fd_.find(peer);
  if (it == peer_fd_.end()) {
    peer_fd_.emplace(peer, fd);
    connected_peers_.fetch_add(1, kRelax);
  } else {
    // Replacement connection (e.g. the old link is half-open and not yet
    // reaped); the latest one wins, the stale fd is closed by idle/error
    // handling and its guard (`pit->second == fd`) leaves this mapping be.
    it->second = fd;
  }
}

void TcpNode::resend_window(Connection& c) {
  const auto it = send_.find(c.peer);
  if (it == send_.end() || it->second.window.empty()) return;
  for (Unacked& u : it->second.window) {
    if (u.sent_once) stats_.requeued_frames.fetch_add(1, kRelax);
    u.sent_once = true;
    queue_frame(c, u.bytes);  // copies; the window entry must stay intact
  }
  flush(c);
}

bool TcpNode::send(NodeId to, Message m) {
  if (cfg_.send_window_limit != 0) {
    // Reserve a window slot before posting: the caller needs the
    // would-block answer synchronously, so the count lives under a mutex
    // shared with the loop thread's ack trim instead of in loop-confined
    // state.
    std::lock_guard<std::mutex> lk(window_mu_);
    auto& pending = window_pending_[to];
    if (pending >= cfg_.send_window_limit) {
      stats_.sends_rejected.fetch_add(1, kRelax);
      return false;
    }
    ++pending;
  }
  m.from = self_;
  loop_.post([this, to, msg = std::move(m)] {
    // Every accepted send joins the peer's window first; it leaves only on
    // a cumulative ack. Delivery across connection churn (including RST,
    // which destroys kernel-buffered data on both ends) then follows from
    // retransmit-on-reconnect plus receive-side dedup.
    auto& ss = send_[to];
    Unacked u;
    u.seq = ss.next_seq++;
    u.bytes = frame(msg, u.seq);
    ss.window.push_back(std::move(u));
    ++unacked_frames_;
    bump_max(stats_.pending_high_water, unacked_frames_);
    Connection* c = established_conn(to);
    if (c != nullptr) {
      ss.window.back().sent_once = true;
      queue_frame(*c, ss.window.back().bytes);
      request_flush(*c);
      return;
    }
    maybe_dial(to);  // no-op unless this side owns the dial
  });
  return true;
}

void TcpNode::request_flush(Connection& c) {
  if (cfg_.max_batch_bytes == 0) {
    // Coalescing disabled: write-per-send, the historical behaviour.
    flush(c);
    return;
  }
  // Defer one loop turn so every frame queued in this drain batch — all
  // sends posted since the last poll, including a whole read burst's
  // worth of engine replies — leaves in one vectored write. Posted tasks
  // drain before due timers fire, so the deferral adds no poll round
  // trip, only tail-of-batch ordering.
  if (c.flush_scheduled) return;
  c.flush_scheduled = true;
  const int fd = c.fd;
  loop_.schedule(0, [this, fd] {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    it->second->flush_scheduled = false;
    flush(*it->second);
  });
}

TcpNode::Connection* TcpNode::established_conn(NodeId peer) {
  const auto it = peer_fd_.find(peer);
  if (it == peer_fd_.end()) return nullptr;
  const auto cit = conns_.find(it->second);
  if (cit == conns_.end() || cit->second->connecting) return nullptr;
  return cit->second.get();
}

void TcpNode::queue_frame(Connection& c, std::vector<std::uint8_t> bytes,
                          bool control) {
  if (!control && cfg_.ack_piggyback_window > 0 && c.ack_due &&
      c.peer.valid()) {
    // An ack is owed to this peer and a data frame is about to join the
    // queue: stamp the cumulative ack into its v2 ack slot instead of
    // spending a standalone kAck frame. (Only the queued copy is stamped;
    // the send-window original keeps ack 0, which decodes as "no info".)
    const std::uint64_t ack = recv_seq_[c.peer];
    if (ack > 0 && bytes.size() >= kAckFieldOffset + 8) {
      store_le64(bytes.data() + kAckFieldOffset, ack);
      c.ack_due = false;
      cancel_ack_timer(c);
      stats_.acks_piggybacked.fetch_add(1, kRelax);
    }
  }
  c.outbox_bytes += bytes.size();
  c.frames.push_back(OutFrame{std::move(bytes), control});
  bump_max(stats_.outbox_high_water, c.outbox_bytes);
}

bool TcpNode::try_stamp_queued_ack(Connection& c) {
  if (!c.peer.valid()) return false;
  const std::uint64_t ack = recv_seq_[c.peer];
  if (ack == 0) return false;
  // Skip the front frame when part of it is already on the wire — its
  // header bytes may be sent, so stamping it would corrupt the stream.
  for (std::size_t i = (c.front_pos > 0) ? 1 : 0; i < c.frames.size(); ++i) {
    OutFrame& f = c.frames[i];
    if (f.control || f.bytes.size() < kAckFieldOffset + 8) continue;
    store_le64(f.bytes.data() + kAckFieldOffset, ack);
    return true;
  }
  return false;
}

void TcpNode::queue_standalone_ack(Connection& c) {
  c.ack_due = false;
  cancel_ack_timer(c);
  stats_.acks_standalone.fetch_add(1, kRelax);
  queue_frame(c, ack_frame(recv_seq_[c.peer]), /*control=*/true);
}

void TcpNode::arm_ack_timer(Connection& c) {
  if (c.ack_timer_pending) return;
  const int fd = c.fd;
  c.ack_timer_pending = true;
  c.ack_timer_id =
      loop_.schedule_cancellable(cfg_.ack_piggyback_window, [this, fd] {
        // close_conn cancels this timer, so `fd` cannot have been reused.
        const auto it = conns_.find(fd);
        if (it == conns_.end()) return;
        Connection& c2 = *it->second;
        c2.ack_timer_pending = false;
        if (!c2.ack_due) return;  // a data frame carried it in the meantime
        queue_standalone_ack(c2);
        flush(c2);
      });
}

void TcpNode::cancel_ack_timer(Connection& c) {
  if (!c.ack_timer_pending) return;
  loop_.cancel_timer(c.ack_timer_id);
  c.ack_timer_pending = false;
}

void TcpNode::flush(Connection& c) {
  if (c.connecting) return;
  while (!c.frames.empty()) {
    // Gather the head of the queue into one vectored write: up to
    // kMaxBatchFrames iovecs or max_batch_bytes, whichever comes first
    // (max_batch_bytes == 0 pins every batch to a single frame — the
    // measurement baseline). sendmsg is writev plus MSG_NOSIGNAL.
    struct iovec iov[kMaxBatchFrames];
    int iovcnt = 0;
    std::size_t batch_bytes = 0;
    for (std::size_t i = 0; i < c.frames.size() && iovcnt < kMaxBatchFrames;
         ++i) {
      OutFrame& f = c.frames[i];
      const std::size_t off = (i == 0) ? c.front_pos : 0;
      iov[iovcnt].iov_base = f.bytes.data() + off;
      iov[iovcnt].iov_len = f.bytes.size() - off;
      batch_bytes += iov[iovcnt].iov_len;
      ++iovcnt;
      if (cfg_.max_batch_bytes == 0 || batch_bytes >= cfg_.max_batch_bytes)
        break;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(c.fd, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      stats_.batches_written.fetch_add(1, kRelax);
      stats_.frames_per_batch[batch_bucket(iovcnt)].fetch_add(1, kRelax);
      stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n), kRelax);
      c.last_send = loop_.now();
      // Advance the frame cursor over whatever the kernel took; a short
      // write leaves front_pos mid-frame and the loop retries immediately
      // (no extra poll round trip while the socket buffer has room).
      std::size_t left = static_cast<std::size_t>(n);
      c.outbox_bytes -= left;
      while (left > 0) {
        OutFrame& f = c.frames.front();
        const std::size_t remain = f.bytes.size() - c.front_pos;
        if (left >= remain) {
          left -= remain;
          c.front_pos = 0;
          stats_.frames_out.fetch_add(1, kRelax);
          c.frames.pop_front();
        } else {
          c.front_pos += left;
          left = 0;
        }
      }
      continue;  // keep writing until the queue drains or EAGAIN
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: wait for writability.
      const int fd = c.fd;
      loop_.watch(fd, POLLIN | POLLOUT, [this, fd](std::uint32_t revents) {
        on_conn_event(fd, revents);
      });
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(c.fd);
    return;
  }
  // Outbox drained: stop watching POLLOUT.
  c.front_pos = 0;
  const int fd = c.fd;
  loop_.watch(fd, POLLIN,
              [this, fd](std::uint32_t revents) { on_conn_event(fd, revents); });
}

void TcpNode::on_conn_event(int fd, std::uint32_t revents) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  if (c.connecting) {
    on_connect_ready(fd, revents);
    return;
  }

  const bool hangup = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  bool dead = false;
  if ((revents & POLLIN) != 0 || hangup) {
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n), kRelax);
        c.last_recv = loop_.now();
        c.decoder.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      dead = true;  // orderly FIN (n == 0) or hard error; decode first
      break;
    }
    try {
      DecodedFrame f;
      while (c.decoder.next_frame(f)) {
        handle_frame(c, f);
        // The handler (or a hello-triggered flush) may have closed this
        // very connection; never touch `c` again once it is gone.
        if (conns_.find(fd) == conns_.end()) return;
      }
    } catch (const DecodeError& e) {
      // Malformed stream: contained to this connection. Drop the link and
      // let the dial side reconnect; unacked frames will be resent.
      stats_.decode_errors.fetch_add(1, kRelax);
      HLOCK_LOG(kError, "node " << self_ << ": malformed frame on fd " << fd
                                << " (" << e.what()
                                << "); closing connection");
      close_conn(fd);
      return;
    }
    if (c.ack_due && !dead && !hangup) {
      // One cumulative ack per read burst, not per frame. With
      // piggybacking on, prefer riding a queued-unsent data frame; failing
      // that, give a data frame ack_piggyback_window to show up before
      // falling back to a standalone kAck.
      if (cfg_.ack_piggyback_window > 0) {
        if (try_stamp_queued_ack(c)) {
          c.ack_due = false;
          cancel_ack_timer(c);
          stats_.acks_piggybacked.fetch_add(1, kRelax);
          flush(c);
          if (conns_.find(fd) == conns_.end()) return;
        } else {
          arm_ack_timer(c);
        }
      } else {
        queue_standalone_ack(c);
        flush(c);
        if (conns_.find(fd) == conns_.end()) return;
      }
    }
  }
  if (dead || hangup) {
    // Even when recv() reported EAGAIN (e.g. POLLHUP with a drained read
    // buffer), a hangup means this connection is finished — without this
    // close the watch would linger and never fire progress again.
    close_conn(fd);
    return;
  }
  if (revents & POLLOUT) flush(c);
}

void TcpNode::process_ack(NodeId peer, std::uint64_t ack_seq) {
  auto& ss = send_[peer];
  std::size_t trimmed = 0;
  while (!ss.window.empty() && ss.window.front().seq <= ack_seq) {
    ss.window.pop_front();
    --unacked_frames_;
    ++trimmed;
  }
  if (trimmed != 0 && cfg_.send_window_limit != 0) {
    std::lock_guard<std::mutex> lk(window_mu_);
    auto& pending = window_pending_[peer];
    pending -= std::min(pending, trimmed);
  }
}

void TcpNode::handle_frame(Connection& c, const DecodedFrame& f) {
  stats_.frames_in.fetch_add(1, kRelax);
  if (f.control) {
    switch (f.op) {
      case ControlOp::kHello: {
        if (c.peer.valid() && c.peer != f.hello_node) {
          HLOCK_LOG(kError, "node " << self_ << ": peer " << c.peer
                                    << " introduced itself as "
                                    << f.hello_node << "; dropping link");
          close_conn(c.fd);
          return;
        }
        const bool inbound_first = !c.peer.valid();
        if (inbound_first) c.peer = f.hello_node;
        if (f.hello_epoch != 0) {
          // A hello always precedes data on its connection (TCP stream
          // order), so resetting the dedup state here is race-free: no
          // frame from the new incarnation can have been delivered yet.
          auto& known = peer_epoch_[c.peer];
          if (known != 0 && known != f.hello_epoch) {
            stats_.peer_restarts.fetch_add(1, kRelax);
            recv_seq_[c.peer] = 0;
            HLOCK_LOG(kInfo, "node " << self_ << ": peer " << c.peer
                                     << " restarted (epoch " << known
                                     << " -> " << f.hello_epoch
                                     << "); sequence state reset");
          }
          known = f.hello_epoch;
        }
        if (!c.greeted) {
          c.greeted = true;
          // Only a completed handshake proves the link works end to end:
          // reset the dial backoff and account the reconnect here, not at
          // connect time (a proxy fronting a dead listener "connects").
          const auto dit = dial_.find(c.peer);
          if (dit != dial_.end()) dit->second.failures = 0;
          auto& ever = ever_connected_[c.peer];
          if (ever) stats_.reconnects.fetch_add(1, kRelax);
          ever = true;
        }
        if (inbound_first) {  // inbound link: now we know who dialed us
          register_peer(c.peer, c.fd);
          resend_window(c);
        }
        return;
      }
      case ControlOp::kPing:
        return;  // liveness only; last_recv was refreshed by the read loop
      case ControlOp::kAck:
        if (c.peer.valid()) process_ack(c.peer, f.ack_seq);
        return;
      case ControlOp::kViewChange:
      case ControlOp::kViewAck:
        // View-layer traffic; only meaningful from an identified peer.
        // The handler may close connections — do not touch `c` after.
        if (c.peer.valid() && c.greeted && control_handler_)
          control_handler_(c.peer, f);
        return;
    }
    return;
  }
  if (!c.peer.valid()) {
    // Data before hello: this stream cannot be deduplicated. Protocol
    // violation; drop the link (the real peer, if any, will retransmit).
    HLOCK_LOG(kError, "node " << self_ << ": data frame before hello on fd "
                              << c.fd << "; dropping link");
    close_conn(c.fd);
    return;
  }
  if (f.has_ack && f.ack_seq > 0) {
    // Piggybacked cumulative ack: trim our send window exactly as a
    // standalone kAck would, before dedup/delivery of the frame itself.
    process_ack(c.peer, f.ack_seq);
  }
  auto& delivered_seq = recv_seq_[c.peer];
  if (f.seq <= delivered_seq) {
    // Retransmission of something already delivered — the peer resends its
    // whole window on reconnect, so this happens whenever the previous
    // connection died after delivery but before our ack arrived. Re-ack
    // (don't re-deliver) or the sender's window would never drain.
    c.ack_due = true;
    return;
  }
  if (f.seq != delivered_seq + 1) {
    // Gaps cannot happen with in-order windows over in-order streams —
    // except right after this node restarts, when the peer's window
    // continues from its pre-restart numbering; favour liveness over
    // strictness either way.
    HLOCK_LOG(kError, "node " << self_ << ": sequence gap from peer "
                              << c.peer << " (" << delivered_seq << " -> "
                              << f.seq << ")");
  }
  delivered_seq = f.seq;
  c.ack_due = true;
  delivered_.fetch_add(1, kRelax);
  if (handler_) handler_(f.msg);
}

void TcpNode::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  const NodeId peer = c.peer;
  cancel_ack_timer(c);

  // No salvage needed: everything unacked for this peer is still in its
  // send window and will be retransmitted wholesale on the next
  // established connection (the receiver dedups by sequence number).
  if (peer.valid()) {
    if (!c.greeted && peer < self_) {
      // The link died before the handshake completed: escalate the
      // backoff, else an accept-then-drop listener induces a redial storm.
      ++dial_[peer].failures;
    }
    const auto pit = peer_fd_.find(peer);
    if (pit != peer_fd_.end() && pit->second == fd) {
      peer_fd_.erase(pit);
      connected_peers_.fetch_sub(1, kRelax);
    }
    const auto dit = dial_.find(peer);
    if (dit != dial_.end() && dit->second.fd == fd) dit->second.fd = -1;
  }
  loop_.unwatch(fd);
  ::close(fd);
  conns_.erase(it);

  if (peer.valid() && established_conn(peer) == nullptr && peer < self_ &&
      peers_.count(peer) != 0) {
    // This side owns the dial and no replacement link exists; reconnect so
    // the window drains. (A replacement link, if any, already resent it.)
    schedule_redial(peer);
  }
}

void TcpNode::close_peer_connection(NodeId peer) {
  loop_.post([this, peer] {
    const auto it = peer_fd_.find(peer);
    if (it != peer_fd_.end()) close_conn(it->second);
  });
}

void TcpNode::arm_heartbeat() {
  Duration tick = 0;
  if (cfg_.heartbeat_interval > 0) {
    tick = cfg_.heartbeat_interval;
  } else if (cfg_.idle_timeout > 0) {
    tick = std::max<Duration>(cfg_.idle_timeout / 4, msec(10));
  }
  if (cfg_.suspect_timeout > 0) {
    // The failure detector piggybacks on this tick; without heartbeats or
    // idle reaping it still needs one, and a coarse heartbeat interval
    // must not make suspicion precision worse than a quarter window.
    const Duration want =
        std::max<Duration>(cfg_.suspect_timeout / 4, msec(10));
    tick = tick > 0 ? std::min(tick, want) : want;
  }
  if (tick <= 0) return;
  loop_.schedule(tick, [this] {
    on_heartbeat();
    arm_heartbeat();
  });
}

void TcpNode::on_heartbeat() {
  const TimePoint t = loop_.now();
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, c] : conns_) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;  // closed by an earlier iteration
    Connection& c = *it->second;
    if (cfg_.idle_timeout > 0 && t - c.last_recv >= cfg_.idle_timeout) {
      // Half-open peer, a stuck connect, or an inbound link that never
      // said hello: reap it. Dialed links go back through backoff.
      stats_.idle_closes.fetch_add(1, kRelax);
      HLOCK_LOG(kDebug, "node " << self_ << ": idle timeout on fd " << fd
                                << " (peer " << c.peer << ")");
      if (c.connecting) {
        fail_dial(c.peer);
      } else {
        close_conn(fd);
      }
      continue;
    }
    if (!c.connecting && cfg_.heartbeat_interval > 0 &&
        t - c.last_send >= cfg_.heartbeat_interval) {
      stats_.heartbeats_sent.fetch_add(1, kRelax);
      queue_frame(c, ping_frame(), /*control=*/true);
      flush(c);  // may close the connection; `c` is not touched after
    }
  }
  if (cfg_.suspect_timeout > 0) check_suspects(t);
}

void TcpNode::check_suspects(TimePoint now) {
  // Fold live connections' receive times into the per-peer record, which
  // outlives any single connection (suspicion is about the peer process,
  // not a link — reconnect churn must not trip it).
  for (const auto& [fd, c] : conns_) {
    if (!c->peer.valid() || c->connecting) continue;
    auto it = last_heard_.find(c->peer);
    if (it != last_heard_.end() && c->last_recv > it->second)
      it->second = c->last_recv;
  }
  bool changed = false;
  for (const auto& [peer, heard] : last_heard_) {
    const bool silent = now - heard >= cfg_.suspect_timeout;
    if (silent && suspected_.count(peer) == 0) {
      suspected_.insert(peer);
      changed = true;
      stats_.peers_suspected.fetch_add(1, kRelax);
      HLOCK_LOG(kInfo, "node " << self_ << ": peer " << peer
                               << " suspected after "
                               << (now - heard) / 1000 << " ms of silence");
      if (on_suspect_) on_suspect_(peer, true);
    } else if (!silent && suspected_.erase(peer) != 0) {
      changed = true;
      stats_.suspicions_cleared.fetch_add(1, kRelax);
      HLOCK_LOG(kInfo, "node " << self_ << ": peer " << peer
                               << " heard from again; suspicion cleared");
      if (on_suspect_) on_suspect_(peer, false);
    }
  }
  if (changed) suspected_count_.store(suspected_.size(), kRelax);
}

TcpStats TcpNode::stats() const {
  TcpStats s;
  s.dials = stats_.dials.load(kRelax);
  s.connect_failures = stats_.connect_failures.load(kRelax);
  s.connects = stats_.connects.load(kRelax);
  s.accepts = stats_.accepts.load(kRelax);
  s.reconnects = stats_.reconnects.load(kRelax);
  s.frames_out = stats_.frames_out.load(kRelax);
  s.frames_in = stats_.frames_in.load(kRelax);
  s.bytes_out = stats_.bytes_out.load(kRelax);
  s.bytes_in = stats_.bytes_in.load(kRelax);
  s.decode_errors = stats_.decode_errors.load(kRelax);
  s.requeued_frames = stats_.requeued_frames.load(kRelax);
  s.heartbeats_sent = stats_.heartbeats_sent.load(kRelax);
  s.idle_closes = stats_.idle_closes.load(kRelax);
  s.sends_rejected = stats_.sends_rejected.load(kRelax);
  s.outbox_high_water = stats_.outbox_high_water.load(kRelax);
  s.pending_high_water = stats_.pending_high_water.load(kRelax);
  s.batches_written = stats_.batches_written.load(kRelax);
  for (std::size_t i = 0; i < kBatchHistBuckets; ++i)
    s.frames_per_batch[i] = stats_.frames_per_batch[i].load(kRelax);
  s.acks_piggybacked = stats_.acks_piggybacked.load(kRelax);
  s.acks_standalone = stats_.acks_standalone.load(kRelax);
  s.peer_restarts = stats_.peer_restarts.load(kRelax);
  s.peers_suspected = stats_.peers_suspected.load(kRelax);
  s.suspicions_cleared = stats_.suspicions_cleared.load(kRelax);
  return s;
}

std::string to_string(const TcpStats& s) {
  std::ostringstream os;
  os << "dials=" << s.dials << " connect_failures=" << s.connect_failures
     << " connects=" << s.connects << " accepts=" << s.accepts
     << " reconnects=" << s.reconnects << " frames_out=" << s.frames_out
     << " frames_in=" << s.frames_in << " bytes_out=" << s.bytes_out
     << " bytes_in=" << s.bytes_in << " decode_errors=" << s.decode_errors
     << " requeued_frames=" << s.requeued_frames
     << " heartbeats_sent=" << s.heartbeats_sent
     << " idle_closes=" << s.idle_closes
     << " sends_rejected=" << s.sends_rejected
     << " outbox_hw=" << s.outbox_high_water
     << " pending_hw=" << s.pending_high_water
     << " batches_written=" << s.batches_written
     << " fpb1=" << s.frames_per_batch[0]
     << " fpb2_4=" << s.frames_per_batch[1]
     << " fpb5_16=" << s.frames_per_batch[2]
     << " fpb17p=" << s.frames_per_batch[3]
     << " acks_piggybacked=" << s.acks_piggybacked
     << " acks_standalone=" << s.acks_standalone
     << " peer_restarts=" << s.peer_restarts
     << " peers_suspected=" << s.peers_suspected
     << " suspicions_cleared=" << s.suspicions_cleared;
  return os.str();
}

}  // namespace hlock::net
