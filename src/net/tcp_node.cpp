#include "net/tcp_node.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "common/logging.hpp"

namespace hlock::net {

namespace {

constexpr auto kRelax = std::memory_order_relaxed;

void set_nonblocking(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Constructor-time failures only (bad port, fd exhaustion at startup):
/// these are configuration errors surfaced to the caller before the loop
/// runs, not runtime faults.
[[noreturn]] void sys_fail(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void bump_max(std::atomic<std::uint64_t>& hw, std::uint64_t v) {
  if (v > hw.load(kRelax)) hw.store(v, kRelax);
}

}  // namespace

TcpNode::TcpNode(NodeId self, std::uint16_t port, TcpConfig cfg)
    : self_(self), cfg_(cfg), transport_(*this) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    sys_fail("bind");
  if (::listen(listen_fd_, 128) != 0) sys_fail("listen");
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  loop_.watch(listen_fd_, POLLIN, [this](std::uint32_t) { on_listen_ready(); });
  // The heartbeat timer is armed from inside the loop once it runs; the
  // constructor may be on any thread.
  loop_.post([this] { arm_heartbeat(); });
}

TcpNode::~TcpNode() {
  for (auto& [fd, c] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpNode::set_peers(std::map<NodeId, PeerAddress> peers) {
  loop_.post([this, peers = std::move(peers)]() mutable {
    peers_ = std::move(peers);
    // Peers dropped from the book must not be re-dialed by a timer armed
    // under the old book.
    for (auto& [peer, d] : dial_) {
      if (peers_.count(peer) == 0 && d.timer_pending) {
        loop_.cancel_timer(d.timer_id);
        d.timer_pending = false;
      }
    }
    // Deterministic mesh: the higher id dials the lower, so each pair has
    // exactly one connection and per-pair FIFO ordering holds.
    for (const auto& [peer, address] : peers_) {
      if (peer < self_) maybe_dial(peer);
    }
  });
}

void TcpNode::set_handler(std::function<void(const Message&)> fn) {
  if (loop_.on_loop_thread() || !loop_.running()) {
    // Safe to assign directly: either we ARE the loop thread (no delivery
    // can be concurrent with us) or nothing is being delivered at all.
    handler_ = std::move(fn);
    return;
  }
  loop_.post([this, fn = std::move(fn)]() mutable {
    handler_ = std::move(fn);
  });
}

void TcpNode::on_listen_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // Transient accept failure (EMFILE, ECONNABORTED, ...): keep the
      // node alive, retry on the next readiness event.
      HLOCK_LOG(kError, "node " << self_ << ": accept failed: "
                                << std::strerror(errno));
      return;
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conns_.emplace(fd, std::move(conn));
    established(*raw, /*outbound=*/false);
  }
}

void TcpNode::maybe_dial(NodeId peer) {
  if (!(peer < self_)) return;  // the higher id dials; we wait for them
  if (peers_.find(peer) == peers_.end()) return;
  auto& d = dial_[peer];
  if (d.fd >= 0 || peer_fd_.count(peer) != 0) return;  // busy or connected
  if (d.timer_pending) return;  // a backoff re-dial is already queued
  start_dial(peer);
}

void TcpNode::start_dial(NodeId peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  auto& d = dial_[peer];
  if (d.fd >= 0 || peer_fd_.count(peer) != 0) return;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(it->second.port);
  if (::inet_pton(AF_INET, it->second.host.c_str(), &addr.sin_addr) != 1) {
    HLOCK_LOG(kError, "node " << self_ << ": bad host for peer " << peer
                              << ": '" << it->second.host << "'");
    ++d.failures;
    stats_.connect_failures.fetch_add(1, kRelax);
    schedule_redial(peer);  // the book may be corrected via set_peers
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    ++d.failures;
    stats_.connect_failures.fetch_add(1, kRelax);
    schedule_redial(peer);
    return;
  }
  set_nonblocking(fd);
  set_nodelay(fd);
  stats_.dials.fetch_add(1, kRelax);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    ++d.failures;
    stats_.connect_failures.fetch_add(1, kRelax);
    schedule_redial(peer);
    return;
  }
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->peer = peer;
  conn->connecting = true;
  conn->last_recv = conn->last_send = loop_.now();
  Connection* raw = conn.get();
  conns_.emplace(fd, std::move(conn));
  d.fd = fd;
  if (rc == 0) {
    established(*raw, /*outbound=*/true);
    return;
  }
  loop_.watch(fd, POLLOUT, [this, fd](std::uint32_t revents) {
    on_connect_ready(fd, revents);
  });
}

void TcpNode::on_connect_ready(int fd, std::uint32_t revents) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  if (!c.connecting) {  // raced with establishment; treat as normal I/O
    on_conn_event(fd, revents);
    return;
  }
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) err = errno;
  if (err != 0 || (revents & (POLLERR | POLLNVAL)) != 0) {
    HLOCK_LOG(kDebug, "node " << self_ << ": connect to peer " << c.peer
                              << " failed: " << std::strerror(err));
    fail_dial(c.peer);
    return;
  }
  established(c, /*outbound=*/true);
}

void TcpNode::fail_dial(NodeId peer) {
  auto& d = dial_[peer];
  if (d.fd >= 0) {
    loop_.unwatch(d.fd);
    ::close(d.fd);
    conns_.erase(d.fd);
    d.fd = -1;
  }
  ++d.failures;
  stats_.connect_failures.fetch_add(1, kRelax);
  schedule_redial(peer);
}

void TcpNode::schedule_redial(NodeId peer) {
  auto& d = dial_[peer];
  if (d.timer_pending || d.fd >= 0 || peer_fd_.count(peer) != 0) return;
  // Capped exponential backoff: min * 2^(failures-1), clamped to max.
  Duration delay = cfg_.reconnect_min > 0 ? cfg_.reconnect_min : msec(1);
  const Duration cap =
      cfg_.reconnect_max > delay ? cfg_.reconnect_max : delay;
  for (std::uint32_t i = 1; i < d.failures && delay < cap; ++i) delay *= 2;
  delay = std::min(delay, cap);
  d.timer_pending = true;
  d.timer_id = loop_.schedule_cancellable(delay, [this, peer] {
    const auto it = dial_.find(peer);
    if (it == dial_.end()) return;
    it->second.timer_pending = false;
    if (it->second.fd >= 0 || peer_fd_.count(peer) != 0) return;
    start_dial(peer);
  });
}

void TcpNode::established(Connection& c, bool outbound) {
  const int fd = c.fd;
  c.connecting = false;
  c.last_recv = c.last_send = loop_.now();
  loop_.watch(fd, POLLIN, [this, fd](std::uint32_t revents) {
    on_conn_event(fd, revents);
  });
  if (outbound) {
    stats_.connects.fetch_add(1, kRelax);
    // Backoff state (failures) resets only on the peer's hello: a listener
    // that accepts and then drops us pre-handshake (half-configured proxy,
    // crashing peer) must keep escalating the redial delay.
    dial_[c.peer].fd = -1;
    register_peer(c.peer, fd);
  } else {
    stats_.accepts.fetch_add(1, kRelax);
  }
  queue_frame(c, hello_frame(self_), /*control=*/true);
  if (outbound) {
    resend_window(c);  // flushes when the peer's window was non-empty
    if (conns_.find(fd) == conns_.end()) return;  // flush may have closed
  }
  flush(c);
}

void TcpNode::register_peer(NodeId peer, int fd) {
  const auto it = peer_fd_.find(peer);
  if (it == peer_fd_.end()) {
    peer_fd_.emplace(peer, fd);
    connected_peers_.fetch_add(1, kRelax);
  } else {
    // Replacement connection (e.g. the old link is half-open and not yet
    // reaped); the latest one wins, the stale fd is closed by idle/error
    // handling and its guard (`pit->second == fd`) leaves this mapping be.
    it->second = fd;
  }
}

void TcpNode::resend_window(Connection& c) {
  const auto it = send_.find(c.peer);
  if (it == send_.end() || it->second.window.empty()) return;
  for (Unacked& u : it->second.window) {
    if (u.sent_once) stats_.requeued_frames.fetch_add(1, kRelax);
    u.sent_once = true;
    queue_frame(c, u.bytes);
  }
  flush(c);
}

bool TcpNode::send(NodeId to, Message m) {
  if (cfg_.send_window_limit != 0) {
    // Reserve a window slot before posting: the caller needs the
    // would-block answer synchronously, so the count lives under a mutex
    // shared with the loop thread's ack trim instead of in loop-confined
    // state.
    std::lock_guard<std::mutex> lk(window_mu_);
    auto& pending = window_pending_[to];
    if (pending >= cfg_.send_window_limit) {
      stats_.sends_rejected.fetch_add(1, kRelax);
      return false;
    }
    ++pending;
  }
  m.from = self_;
  loop_.post([this, to, msg = std::move(m)] {
    // Every accepted send joins the peer's window first; it leaves only on
    // a cumulative ack. Delivery across connection churn (including RST,
    // which destroys kernel-buffered data on both ends) then follows from
    // retransmit-on-reconnect plus receive-side dedup.
    auto& ss = send_[to];
    Unacked u;
    u.seq = ss.next_seq++;
    u.bytes = frame(msg, u.seq);
    ss.window.push_back(std::move(u));
    ++unacked_frames_;
    bump_max(stats_.pending_high_water, unacked_frames_);
    Connection* c = established_conn(to);
    if (c != nullptr) {
      ss.window.back().sent_once = true;
      queue_frame(*c, ss.window.back().bytes);
      flush(*c);
      return;
    }
    maybe_dial(to);  // no-op unless this side owns the dial
  });
  return true;
}

TcpNode::Connection* TcpNode::established_conn(NodeId peer) {
  const auto it = peer_fd_.find(peer);
  if (it == peer_fd_.end()) return nullptr;
  const auto cit = conns_.find(it->second);
  if (cit == conns_.end() || cit->second->connecting) return nullptr;
  return cit->second.get();
}

void TcpNode::queue_frame(Connection& c, const std::vector<std::uint8_t>& bytes,
                          bool control) {
  if (c.outbox_pos == c.outbox.size() && c.frames.empty()) {
    c.outbox.clear();
    c.outbox_pos = 0;
  } else if (c.outbox_pos > 65536) {
    // Reclaim the consumed prefix once it dominates the buffer — but never
    // past the start of a partially-written frame, whose offset must stay
    // a valid index for flush()'s completion accounting.
    std::size_t reclaim = c.outbox_pos;
    if (!c.frames.empty()) reclaim = std::min(reclaim, c.frames.front().off);
    if (reclaim > 0 && reclaim * 2 > c.outbox.size()) {
      c.outbox.erase(c.outbox.begin(),
                     c.outbox.begin() + static_cast<std::ptrdiff_t>(reclaim));
      c.outbox_pos -= reclaim;
      for (OutFrame& f : c.frames) f.off -= reclaim;
    }
  }
  c.frames.push_back(OutFrame{c.outbox.size(),
                              static_cast<std::uint32_t>(bytes.size()),
                              control});
  c.outbox.insert(c.outbox.end(), bytes.begin(), bytes.end());
  bump_max(stats_.outbox_high_water, c.outbox.size() - c.outbox_pos);
}

void TcpNode::flush(Connection& c) {
  if (c.connecting) return;
  while (c.outbox_pos < c.outbox.size()) {
    // One contiguous write of everything pending.
    const ssize_t n = ::send(c.fd, c.outbox.data() + c.outbox_pos,
                             c.outbox.size() - c.outbox_pos, MSG_NOSIGNAL);
    if (n > 0) {
      c.outbox_pos += static_cast<std::size_t>(n);
      c.last_send = loop_.now();
      stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n), kRelax);
      while (!c.frames.empty() &&
             c.frames.front().off + c.frames.front().len <= c.outbox_pos) {
        stats_.frames_out.fetch_add(1, kRelax);
        c.frames.pop_front();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Wait for writability.
      const int fd = c.fd;
      loop_.watch(fd, POLLIN | POLLOUT, [this, fd](std::uint32_t revents) {
        on_conn_event(fd, revents);
      });
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(c.fd);
    return;
  }
  // Outbox drained: release the buffer cursor and stop watching POLLOUT.
  c.outbox.clear();
  c.outbox_pos = 0;
  c.frames.clear();
  const int fd = c.fd;
  loop_.watch(fd, POLLIN,
              [this, fd](std::uint32_t revents) { on_conn_event(fd, revents); });
}

void TcpNode::on_conn_event(int fd, std::uint32_t revents) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  if (c.connecting) {
    on_connect_ready(fd, revents);
    return;
  }

  const bool hangup = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  bool dead = false;
  if ((revents & POLLIN) != 0 || hangup) {
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n), kRelax);
        c.last_recv = loop_.now();
        c.decoder.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      dead = true;  // orderly FIN (n == 0) or hard error; decode first
      break;
    }
    try {
      DecodedFrame f;
      while (c.decoder.next_frame(f)) {
        handle_frame(c, f);
        // The handler (or a hello-triggered flush) may have closed this
        // very connection; never touch `c` again once it is gone.
        if (conns_.find(fd) == conns_.end()) return;
      }
    } catch (const DecodeError& e) {
      // Malformed stream: contained to this connection. Drop the link and
      // let the dial side reconnect; unacked frames will be resent.
      stats_.decode_errors.fetch_add(1, kRelax);
      HLOCK_LOG(kError, "node " << self_ << ": malformed frame on fd " << fd
                                << " (" << e.what()
                                << "); closing connection");
      close_conn(fd);
      return;
    }
    if (c.ack_due && !dead && !hangup) {
      // One cumulative ack per read burst, not per frame.
      c.ack_due = false;
      queue_frame(c, ack_frame(recv_seq_[c.peer]), /*control=*/true);
      flush(c);
      if (conns_.find(fd) == conns_.end()) return;
    }
  }
  if (dead || hangup) {
    // Even when recv() reported EAGAIN (e.g. POLLHUP with a drained read
    // buffer), a hangup means this connection is finished — without this
    // close the watch would linger and never fire progress again.
    close_conn(fd);
    return;
  }
  if (revents & POLLOUT) flush(c);
}

void TcpNode::handle_frame(Connection& c, const DecodedFrame& f) {
  stats_.frames_in.fetch_add(1, kRelax);
  if (f.control) {
    switch (f.op) {
      case ControlOp::kHello: {
        if (c.peer.valid() && c.peer != f.hello_node) {
          HLOCK_LOG(kError, "node " << self_ << ": peer " << c.peer
                                    << " introduced itself as "
                                    << f.hello_node << "; dropping link");
          close_conn(c.fd);
          return;
        }
        const bool inbound_first = !c.peer.valid();
        if (inbound_first) c.peer = f.hello_node;
        if (!c.greeted) {
          c.greeted = true;
          // Only a completed handshake proves the link works end to end:
          // reset the dial backoff and account the reconnect here, not at
          // connect time (a proxy fronting a dead listener "connects").
          const auto dit = dial_.find(c.peer);
          if (dit != dial_.end()) dit->second.failures = 0;
          auto& ever = ever_connected_[c.peer];
          if (ever) stats_.reconnects.fetch_add(1, kRelax);
          ever = true;
        }
        if (inbound_first) {  // inbound link: now we know who dialed us
          register_peer(c.peer, c.fd);
          resend_window(c);
        }
        return;
      }
      case ControlOp::kPing:
        return;  // liveness only; last_recv was refreshed by the read loop
      case ControlOp::kAck: {
        if (!c.peer.valid()) return;
        auto& ss = send_[c.peer];
        std::size_t trimmed = 0;
        while (!ss.window.empty() && ss.window.front().seq <= f.ack_seq) {
          ss.window.pop_front();
          --unacked_frames_;
          ++trimmed;
        }
        if (trimmed != 0 && cfg_.send_window_limit != 0) {
          std::lock_guard<std::mutex> lk(window_mu_);
          auto& pending = window_pending_[c.peer];
          pending -= std::min(pending, trimmed);
        }
        return;
      }
    }
    return;
  }
  if (!c.peer.valid()) {
    // Data before hello: this stream cannot be deduplicated. Protocol
    // violation; drop the link (the real peer, if any, will retransmit).
    HLOCK_LOG(kError, "node " << self_ << ": data frame before hello on fd "
                              << c.fd << "; dropping link");
    close_conn(c.fd);
    return;
  }
  auto& delivered_seq = recv_seq_[c.peer];
  if (f.seq <= delivered_seq) {
    // Retransmission of something already delivered — the peer resends its
    // whole window on reconnect, so this happens whenever the previous
    // connection died after delivery but before our ack arrived. Re-ack
    // (don't re-deliver) or the sender's window would never drain.
    c.ack_due = true;
    return;
  }
  if (f.seq != delivered_seq + 1) {
    // Gaps cannot happen with in-order windows over in-order streams;
    // favour liveness over strictness if a peer misbehaves.
    HLOCK_LOG(kError, "node " << self_ << ": sequence gap from peer "
                              << c.peer << " (" << delivered_seq << " -> "
                              << f.seq << ")");
  }
  delivered_seq = f.seq;
  c.ack_due = true;
  delivered_.fetch_add(1, kRelax);
  if (handler_) handler_(f.msg);
}

void TcpNode::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  const NodeId peer = c.peer;

  // No salvage needed: everything unacked for this peer is still in its
  // send window and will be retransmitted wholesale on the next
  // established connection (the receiver dedups by sequence number).
  if (peer.valid()) {
    if (!c.greeted && peer < self_) {
      // The link died before the handshake completed: escalate the
      // backoff, else an accept-then-drop listener induces a redial storm.
      ++dial_[peer].failures;
    }
    const auto pit = peer_fd_.find(peer);
    if (pit != peer_fd_.end() && pit->second == fd) {
      peer_fd_.erase(pit);
      connected_peers_.fetch_sub(1, kRelax);
    }
    const auto dit = dial_.find(peer);
    if (dit != dial_.end() && dit->second.fd == fd) dit->second.fd = -1;
  }
  loop_.unwatch(fd);
  ::close(fd);
  conns_.erase(it);

  if (peer.valid() && established_conn(peer) == nullptr && peer < self_ &&
      peers_.count(peer) != 0) {
    // This side owns the dial and no replacement link exists; reconnect so
    // the window drains. (A replacement link, if any, already resent it.)
    schedule_redial(peer);
  }
}

void TcpNode::close_peer_connection(NodeId peer) {
  loop_.post([this, peer] {
    const auto it = peer_fd_.find(peer);
    if (it != peer_fd_.end()) close_conn(it->second);
  });
}

void TcpNode::arm_heartbeat() {
  Duration tick = 0;
  if (cfg_.heartbeat_interval > 0) {
    tick = cfg_.heartbeat_interval;
  } else if (cfg_.idle_timeout > 0) {
    tick = std::max<Duration>(cfg_.idle_timeout / 4, msec(10));
  }
  if (tick <= 0) return;
  loop_.schedule(tick, [this] {
    on_heartbeat();
    arm_heartbeat();
  });
}

void TcpNode::on_heartbeat() {
  const TimePoint t = loop_.now();
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, c] : conns_) fds.push_back(fd);
  for (const int fd : fds) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;  // closed by an earlier iteration
    Connection& c = *it->second;
    if (cfg_.idle_timeout > 0 && t - c.last_recv >= cfg_.idle_timeout) {
      // Half-open peer, a stuck connect, or an inbound link that never
      // said hello: reap it. Dialed links go back through backoff.
      stats_.idle_closes.fetch_add(1, kRelax);
      HLOCK_LOG(kDebug, "node " << self_ << ": idle timeout on fd " << fd
                                << " (peer " << c.peer << ")");
      if (c.connecting) {
        fail_dial(c.peer);
      } else {
        close_conn(fd);
      }
      continue;
    }
    if (!c.connecting && cfg_.heartbeat_interval > 0 &&
        t - c.last_send >= cfg_.heartbeat_interval) {
      stats_.heartbeats_sent.fetch_add(1, kRelax);
      queue_frame(c, ping_frame(), /*control=*/true);
      flush(c);  // may close the connection; `c` is not touched after
    }
  }
}

TcpStats TcpNode::stats() const {
  TcpStats s;
  s.dials = stats_.dials.load(kRelax);
  s.connect_failures = stats_.connect_failures.load(kRelax);
  s.connects = stats_.connects.load(kRelax);
  s.accepts = stats_.accepts.load(kRelax);
  s.reconnects = stats_.reconnects.load(kRelax);
  s.frames_out = stats_.frames_out.load(kRelax);
  s.frames_in = stats_.frames_in.load(kRelax);
  s.bytes_out = stats_.bytes_out.load(kRelax);
  s.bytes_in = stats_.bytes_in.load(kRelax);
  s.decode_errors = stats_.decode_errors.load(kRelax);
  s.requeued_frames = stats_.requeued_frames.load(kRelax);
  s.heartbeats_sent = stats_.heartbeats_sent.load(kRelax);
  s.idle_closes = stats_.idle_closes.load(kRelax);
  s.sends_rejected = stats_.sends_rejected.load(kRelax);
  s.outbox_high_water = stats_.outbox_high_water.load(kRelax);
  s.pending_high_water = stats_.pending_high_water.load(kRelax);
  return s;
}

std::string to_string(const TcpStats& s) {
  std::ostringstream os;
  os << "dials=" << s.dials << " connect_failures=" << s.connect_failures
     << " connects=" << s.connects << " accepts=" << s.accepts
     << " reconnects=" << s.reconnects << " frames_out=" << s.frames_out
     << " frames_in=" << s.frames_in << " bytes_out=" << s.bytes_out
     << " bytes_in=" << s.bytes_in << " decode_errors=" << s.decode_errors
     << " requeued_frames=" << s.requeued_frames
     << " heartbeats_sent=" << s.heartbeats_sent
     << " idle_closes=" << s.idle_closes
     << " sends_rejected=" << s.sends_rejected
     << " outbox_hw=" << s.outbox_high_water
     << " pending_hw=" << s.pending_high_water;
  return os.str();
}

}  // namespace hlock::net
