#include "net/tcp_node.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "common/logging.hpp"

namespace hlock::net {

namespace {

/// Hello frames carry this reserved lock id; they never reach the engine.
constexpr std::uint32_t kHelloLockValue = 0xFFFFFFFE;

void set_nonblocking(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

[[noreturn]] void sys_fail(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

TcpNode::TcpNode(NodeId self, std::uint16_t port)
    : self_(self), transport_(*this) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    sys_fail("bind");
  if (::listen(listen_fd_, 128) != 0) sys_fail("listen");
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  loop_.watch(listen_fd_, POLLIN, [this](std::uint32_t) { on_listen_ready(); });
}

TcpNode::~TcpNode() {
  for (auto& [fd, c] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void TcpNode::set_peers(std::map<NodeId, PeerAddress> peers) {
  loop_.post([this, peers = std::move(peers)]() mutable {
    peers_ = std::move(peers);
    // Deterministic mesh: the higher id dials the lower, so each pair has
    // exactly one connection and per-pair FIFO ordering holds.
    for (const auto& [peer, address] : peers_) {
      if (peer < self_ && peer_fd_.find(peer) == peer_fd_.end()) dial(peer);
    }
  });
}

void TcpNode::set_handler(std::function<void(const Message&)> fn) {
  if (loop_.on_loop_thread() || !loop_.running()) {
    // Safe to assign directly: either we ARE the loop thread (no delivery
    // can be concurrent with us) or nothing is being delivered at all.
    handler_ = std::move(fn);
    return;
  }
  loop_.post([this, fn = std::move(fn)]() mutable {
    handler_ = std::move(fn);
  });
}

void TcpNode::on_listen_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      sys_fail("accept");
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conns_.emplace(fd, std::move(conn));
    send_hello(*raw);
    loop_.watch(fd, POLLIN,
                [this, fd](std::uint32_t revents) { on_conn_event(fd, revents); });
  }
}

void TcpNode::dial(NodeId peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) throw std::logic_error("dial: unknown peer");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(it->second.port);
  if (::inet_pton(AF_INET, it->second.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::invalid_argument("bad peer host");
  }
  // Loopback connects complete immediately in practice; a blocking connect
  // on the loop thread keeps the harness simple.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    sys_fail("connect");
  }
  set_nonblocking(fd);
  set_nodelay(fd);
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->peer = peer;
  Connection* raw = conn.get();
  conns_.emplace(fd, std::move(conn));
  peer_fd_[peer] = fd;
  send_hello(*raw);
  loop_.watch(fd, POLLIN,
              [this, fd](std::uint32_t revents) { on_conn_event(fd, revents); });
  // Flush anything queued while unconnected.
  const auto pending = pending_out_.find(peer);
  if (pending != pending_out_.end()) {
    for (const Message& m : pending->second) queue_frame(*raw, frame(m));
    pending_out_.erase(pending);
    flush(*raw);
  }
}

void TcpNode::send_hello(Connection& c) {
  Message hello;
  hello.kind = MsgKind::kRequest;
  hello.lock = LockId{kHelloLockValue};
  hello.from = self_;
  hello.req.requester = self_;
  queue_frame(c, frame(hello));
  c.hello_sent = true;
  flush(c);
}

void TcpNode::send(NodeId to, Message m) {
  m.from = self_;
  loop_.post([this, to, msg = std::move(m)] {
    Connection* c = conn_for_peer(to);
    if (c == nullptr) {
      if (to < self_ && peers_.count(to) != 0) {
        dial(to);
        c = conn_for_peer(to);
      } else {
        // The lower id waits for the peer's dial; queue until the hello.
        pending_out_[to].push_back(msg);
        return;
      }
    }
    queue_frame(*c, frame(msg));
    flush(*c);
  });
}

TcpNode::Connection* TcpNode::conn_for_peer(NodeId peer) {
  const auto it = peer_fd_.find(peer);
  if (it == peer_fd_.end()) return nullptr;
  const auto cit = conns_.find(it->second);
  return cit == conns_.end() ? nullptr : cit->second.get();
}

void TcpNode::queue_frame(Connection& c, const std::vector<std::uint8_t>& bytes) {
  // Reclaim the consumed prefix before it dominates the buffer, so the
  // outbox stays a flat append-only vector between flushes.
  if (c.outbox_pos == c.outbox.size()) {
    c.outbox.clear();
    c.outbox_pos = 0;
  } else if (c.outbox_pos > 65536 && c.outbox_pos * 2 > c.outbox.size()) {
    c.outbox.erase(c.outbox.begin(),
                   c.outbox.begin() + static_cast<std::ptrdiff_t>(c.outbox_pos));
    c.outbox_pos = 0;
  }
  c.outbox.insert(c.outbox.end(), bytes.begin(), bytes.end());
}

void TcpNode::flush(Connection& c) {
  while (c.outbox_pos < c.outbox.size()) {
    // One contiguous write of everything pending.
    const ssize_t n = ::send(c.fd, c.outbox.data() + c.outbox_pos,
                             c.outbox.size() - c.outbox_pos, MSG_NOSIGNAL);
    if (n > 0) {
      c.outbox_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Wait for writability.
      const int fd = c.fd;
      loop_.watch(fd, POLLIN | POLLOUT, [this, fd](std::uint32_t revents) {
        on_conn_event(fd, revents);
      });
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(c.fd);
    return;
  }
  // Outbox drained: release the buffer cursor and stop watching POLLOUT.
  c.outbox.clear();
  c.outbox_pos = 0;
  const int fd = c.fd;
  loop_.watch(fd, POLLIN,
              [this, fd](std::uint32_t revents) { on_conn_event(fd, revents); });
}

void TcpNode::on_conn_event(int fd, std::uint32_t revents) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& c = *it->second;

  if (revents & (POLLERR | POLLHUP)) {
    // Drain whatever is readable, then close.
    revents |= POLLIN;
  }
  if (revents & POLLIN) {
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        c.decoder.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_conn(fd);
      return;
    }
    Message m;
    while (c.decoder.next(m)) handle_frame(c, m);
  }
  if (revents & POLLOUT) flush(c);
}

void TcpNode::handle_frame(Connection& c, const Message& m) {
  if (m.lock.value == kHelloLockValue) {
    c.peer = m.req.requester;
    peer_fd_[c.peer] = c.fd;
    const auto pending = pending_out_.find(c.peer);
    if (pending != pending_out_.end()) {
      for (const Message& out : pending->second) queue_frame(c, frame(out));
      pending_out_.erase(pending);
      flush(c);
    }
    return;
  }
  ++delivered_;
  if (handler_) handler_(m);
}

void TcpNode::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second->peer.valid()) {
    const auto pit = peer_fd_.find(it->second->peer);
    if (pit != peer_fd_.end() && pit->second == fd) peer_fd_.erase(pit);
  }
  loop_.unwatch(fd);
  ::close(fd);
  conns_.erase(it);
}

}  // namespace hlock::net
