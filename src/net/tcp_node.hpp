// TcpNode — one protocol participant over real TCP sockets.
//
// Owns an EventLoop (run on a dedicated thread by the caller or
// InProcessCluster), a listening socket, and one connection per peer.
// Peers greet with a one-frame control hello carrying their NodeId and
// boot epoch, so either side may dial and a restarted peer is detected.
// The Transport facade is thread-safe: send() posts onto the loop thread,
// which owns all sockets and the engine.
//
// Fault tolerance (all on the loop thread, no extra locking):
//  - dial() is non-blocking; connect() completion/failure is observed via
//    POLLOUT. Refused or dropped connections to a known peer are re-dialed
//    with capped exponential backoff (TcpConfig::reconnect_min/max).
//  - A malformed frame (DecodeError) closes only the offending connection;
//    the process never terminates on peer garbage.
//  - Every accepted send() gets a per-peer sequence number and stays in
//    that peer's send window until cumulatively acked. When a connection
//    dies — FIN, RST, refused dial, idle reap — the whole unacked window
//    is retransmitted on the next established connection and the receiver
//    drops frames it already delivered (seq <= its cumulative counter).
//    This survives even an abortive RST close, which destroys both the
//    sender's untransmitted sndbuf and the receiver's unread rcvbuf —
//    cases where "written to the kernel" is not "delivered". No accepted
//    send() is dropped or duplicated while both processes live.
//  - A restarted peer announces a new epoch in its hello; the receive-side
//    dedup state for that peer is reset (peer_restarts counts it) instead
//    of silently dropping the new incarnation's frames as duplicates.
//  - A heartbeat timer pings idle connections and closes peers that have
//    been silent past idle_timeout (half-open detection). The same
//    deadline bounds a stuck non-blocking connect().
//
// Throughput (the batching/pipelining layer):
//  - Queued frames for a peer are gathered into a single writev() — iovec
//    batching up to max_batch_bytes per syscall, partial writes carried
//    over. flush() keeps writing until the outbox drains or the kernel
//    says EAGAIN, so a short write never costs an extra poll round trip.
//  - Under bidirectional load, cumulative acks ride inside queued data
//    frames (piggybacking) instead of spending a standalone kAck frame;
//    a small timer (ack_piggyback_window) bounds how long an ack may wait
//    for a data frame to carry it.
#pragma once

#include <cstdint>
#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "msg/message.hpp"
#include "net/event_loop.hpp"
#include "net/framing.hpp"

namespace hlock::net {

struct PeerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port{0};
};

/// Transport tuning. Durations are virtual-time microseconds (msec()/sec()
/// helpers); 0 disables the corresponding behaviour.
struct TcpConfig {
  /// First re-dial delay after a failed/refused/dropped connection; doubles
  /// per consecutive failure up to reconnect_max.
  Duration reconnect_min{msec(20)};
  Duration reconnect_max{sec(2)};
  /// Send a ping on connections with no outbound traffic for this long.
  /// 0 disables heartbeats (idle peers will then see idle_timeout fire).
  Duration heartbeat_interval{msec(500)};
  /// Close a connection with no inbound traffic for this long (half-open
  /// detection); also bounds a pending non-blocking connect. 0 disables.
  Duration idle_timeout{sec(5)};
  /// Per-peer cap on accepted-but-unacked sends. 0 = unbounded (the
  /// historical behaviour: a dead peer grows its window without limit).
  /// When the peer's window is full, send() returns false and does NOT
  /// enqueue — backpressure for callers that can retry. The Transport
  /// facade cannot retry (engines are callback-driven), so there a
  /// rejected send is dropped and counted in stats().sends_rejected.
  std::size_t send_window_limit{0};
  /// Gather queued frames into one writev() until the batch reaches this
  /// many bytes (or kMaxBatchFrames iovecs). 0 disables coalescing: every
  /// writev carries exactly one frame (the measurement baseline).
  std::size_t max_batch_bytes{256 * 1024};
  /// Ack piggybacking: instead of answering every read burst with a
  /// standalone kAck control frame, stamp the cumulative ack into a
  /// queued-but-unsent data frame to the same peer, or wait up to this
  /// long for one to be queued before falling back to a standalone ack.
  /// 0 disables piggybacking (every ack is a standalone frame).
  Duration ack_piggyback_window{0};
  /// Failure detection: suspect a peer after this long without hearing
  /// any byte from it (counting from set_peers for peers never heard at
  /// all). Checked on the heartbeat tick, so effective precision is the
  /// tick interval; configure heartbeat_interval well below this. A
  /// suspected peer that speaks again is un-suspected (the detector is
  /// unreliable by design — eventually-perfect, not perfect). 0 disables
  /// suspicion entirely.
  Duration suspect_timeout{0};
};

/// frames_per_batch histogram bucket upper bounds: 1, 2–4, 5–16, ≥17.
inline constexpr std::size_t kBatchHistBuckets = 4;

/// Monotonic transport counters (snapshot; see TcpNode::stats()).
struct TcpStats {
  std::uint64_t dials{0};             ///< connect() attempts started
  std::uint64_t connect_failures{0};  ///< refused/failed/timed-out dials
  std::uint64_t connects{0};          ///< established outbound connections
  std::uint64_t accepts{0};           ///< established inbound connections
  std::uint64_t reconnects{0};        ///< re-established links to a peer
  std::uint64_t frames_out{0};        ///< frames fully written to the wire
  std::uint64_t frames_in{0};         ///< frames decoded (incl. control)
  std::uint64_t bytes_out{0};
  std::uint64_t bytes_in{0};
  std::uint64_t decode_errors{0};     ///< malformed frames (conn dropped)
  std::uint64_t requeued_frames{0};   ///< unacked frames retransmitted
  std::uint64_t heartbeats_sent{0};
  std::uint64_t idle_closes{0};       ///< conns closed by idle_timeout
  std::uint64_t sends_rejected{0};    ///< send() refusals (window cap hit)
  std::uint64_t outbox_high_water{0}; ///< max queued-unsent bytes, one conn
  std::uint64_t pending_high_water{0};///< max unacked frames, all peers
  std::uint64_t batches_written{0};   ///< writev() calls that made progress
  /// Frames gathered per successful writev(): buckets 1, 2–4, 5–16, ≥17.
  std::uint64_t frames_per_batch[kBatchHistBuckets]{};
  std::uint64_t acks_piggybacked{0};  ///< acks carried inside data frames
  std::uint64_t acks_standalone{0};   ///< standalone kAck frames queued
  std::uint64_t peer_restarts{0};     ///< hello epoch changes observed
  std::uint64_t peers_suspected{0};   ///< suspicion transitions (silence)
  std::uint64_t suspicions_cleared{0};///< suspected peers heard from again
};

class TcpNode {
 public:
  /// Listens on 127.0.0.1:`port` (0 = ephemeral; see listen_port()).
  explicit TcpNode(NodeId self, std::uint16_t port = 0, TcpConfig cfg = {});
  ~TcpNode();
  TcpNode(const TcpNode&) = delete;
  TcpNode& operator=(const TcpNode&) = delete;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }
  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] const TcpConfig& config() const { return cfg_; }
  /// This process's boot epoch (nonzero, announced in the hello frame).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Provide the address book. Only peers with id < self() are dialed
  /// (the higher id accepts), which yields exactly one connection per
  /// pair. Call from any thread before or after the loop starts.
  void set_peers(std::map<NodeId, PeerAddress> peers);

  /// Handler invoked on the loop thread for every received message.
  void set_handler(std::function<void(const Message&)> fn);

  /// Failure-detector callback, invoked on the loop thread whenever a
  /// peer's suspicion state flips: `suspected` true after suspect_timeout
  /// of silence, false when a suspected peer is heard from again. Requires
  /// TcpConfig::suspect_timeout > 0.
  void set_on_peer_suspected(std::function<void(NodeId, bool)> fn);

  /// Handler for view-change control frames (ControlOp::kViewChange /
  /// kViewAck), invoked on the loop thread with the sending peer. Frames
  /// from connections that have not completed the hello handshake are
  /// dropped (the sender retries).
  void set_control_handler(
      std::function<void(NodeId, const DecodedFrame&)> fn);

  /// Best-effort control-frame send: queue `bytes` (a complete control
  /// frame, e.g. view_change_frame()) on the established connection to
  /// `to`, or drop it (kicking a re-dial) when none exists. Control frames
  /// bypass the send windows — callers that need reliability retry on a
  /// timer, which is exactly what the view coordinator does.
  void send_control(NodeId to, std::vector<std::uint8_t> bytes);

  /// Administrative removal of a peer (e.g. declared dead by a view
  /// change): close its connection, cancel re-dials, drop its address-book
  /// entry, and discard its send window and receive-dedup state so
  /// unacked() can drain. Frames queued for the peer are lost by design —
  /// it is dead.
  void forget_peer(NodeId peer);

  /// Peers currently suspected by the failure detector.
  [[nodiscard]] std::size_t suspected_peers() const {
    return suspected_count_.load(std::memory_order_relaxed);
  }

  /// Thread-safe Transport: enqueue a message to a peer.
  class NodeTransport final : public Transport {
   public:
    explicit NodeTransport(TcpNode& node) : node_(node) {}
    void send(NodeId to, Message m) override {
      // Engines cannot retry from a callback, so a window-cap rejection
      // here is a drop (already counted in stats().sends_rejected). Run
      // protocol traffic with send_window_limit = 0 unless the workload
      // tolerates message loss.
      (void)node_.send(to, std::move(m));
    }

   private:
    TcpNode& node_;
  };
  [[nodiscard]] Transport& transport() { return transport_; }

  /// Enqueue `m` for delivery to `to`. An accepted send (return true)
  /// never fails afterwards: the frame joins the peer's send window
  /// (retransmitted across connection churn until acked) and a (re)dial
  /// is kicked off when this node is the dialing side. Returns false —
  /// and enqueues nothing — only when TcpConfig::send_window_limit > 0
  /// and that peer already has that many accepted-but-unacked sends
  /// (would-block backpressure; retry after the window drains).
  bool send(NodeId to, Message m);

  /// Messages delivered so far (loop thread increments; approximate from
  /// other threads).
  [[nodiscard]] std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Peers with an established (hello-capable) connection right now.
  [[nodiscard]] std::size_t connected_peers() const {
    return connected_peers_.load(std::memory_order_relaxed);
  }

  /// Accepted sends not yet acked by their peer, across all windows (0
  /// means every accepted send has provably been delivered).
  [[nodiscard]] std::size_t unacked() const {
    return unacked_frames_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the transport counters. Thread-safe; exact once the loop
  /// has stopped, approximate while it runs.
  [[nodiscard]] TcpStats stats() const;

  /// Fault-injection/admin hook: asynchronously close the connection to
  /// `peer` (if any). Unacked frames are retransmitted on the next
  /// connection exactly as if the link had died.
  void close_peer_connection(NodeId peer);

 private:
  /// Cap on iovecs per writev() — comfortably below any IOV_MAX.
  static constexpr int kMaxBatchFrames = 64;

  /// One frame in a connection outbox. Owns its bytes (a copy of the
  /// window entry, or a moved control frame), so a cumulative ack that
  /// trims the send window mid-flush can never free memory the iovec
  /// batch still points at.
  struct OutFrame {
    std::vector<std::uint8_t> bytes;
    bool control{false};
  };

  struct Connection {
    int fd{-1};
    NodeId peer{};           ///< invalid until hello received (inbound)
    bool connecting{false};  ///< non-blocking connect() still in flight
    bool greeted{false};     ///< peer's hello received on this connection
    bool ack_due{false};     ///< delivered new frames; cumulative ack owed
    FrameDecoder decoder;
    /// Pending output, oldest first; bytes [front_pos, front.size()) of
    /// the first frame are still unsent, later frames entirely so.
    std::deque<OutFrame> frames;
    std::size_t front_pos{0};
    std::size_t outbox_bytes{0};  ///< total unsent bytes across frames
    bool flush_scheduled{false};  ///< a coalescing flush is queued
    bool ack_timer_pending{false};  ///< piggyback fallback timer armed
    std::uint64_t ack_timer_id{0};
    TimePoint last_recv{0};  ///< loop().now() of last inbound byte
    TimePoint last_send{0};  ///< loop().now() of last outbound byte
  };

  /// One accepted send() awaiting a cumulative ack from its peer.
  struct Unacked {
    std::uint64_t seq{0};
    std::vector<std::uint8_t> bytes;  ///< full frame, ready to (re)send
    bool sent_once{false};  ///< queued to at least one connection already
  };

  /// Per-peer reliable-delivery state on the send side.
  struct SendState {
    std::uint64_t next_seq{1};
    std::deque<Unacked> window;  ///< oldest first; trimmed by acks
  };

  /// Re-dial bookkeeping for peers this node dials (peer < self_).
  struct DialState {
    std::uint32_t failures{0};   ///< consecutive failures (backoff exponent)
    bool timer_pending{false};   ///< a backoff re-dial timer is queued
    std::uint64_t timer_id{0};
    int fd{-1};                  ///< in-flight connecting fd, -1 if none
  };

  void on_listen_ready();
  void on_conn_event(int fd, std::uint32_t revents);
  void on_connect_ready(int fd, std::uint32_t revents);
  void flush(Connection& c);
  void close_conn(int fd);
  Connection* established_conn(NodeId peer);
  void start_dial(NodeId peer);
  void fail_dial(NodeId peer);
  void schedule_redial(NodeId peer);
  void maybe_dial(NodeId peer);
  void established(Connection& c, bool outbound);
  void register_peer(NodeId peer, int fd);
  void resend_window(Connection& c);
  void queue_frame(Connection& c, std::vector<std::uint8_t> bytes,
                   bool control = false);
  void request_flush(Connection& c);
  void handle_frame(Connection& c, const DecodedFrame& f);
  void process_ack(NodeId peer, std::uint64_t ack_seq);
  void queue_standalone_ack(Connection& c);
  bool try_stamp_queued_ack(Connection& c);
  void arm_ack_timer(Connection& c);
  void cancel_ack_timer(Connection& c);
  void arm_heartbeat();
  void on_heartbeat();
  void check_suspects(TimePoint now);

  const NodeId self_;
  const TcpConfig cfg_;
  const std::uint64_t epoch_;
  EventLoop loop_;
  NodeTransport transport_;
  int listen_fd_{-1};
  std::uint16_t listen_port_{0};
  std::map<NodeId, PeerAddress> peers_;
  std::map<int, std::unique_ptr<Connection>> conns_;  ///< by fd
  std::map<NodeId, int> peer_fd_;  ///< established connections only
  std::map<NodeId, DialState> dial_;
  /// Send windows, one per peer: every accepted send() lives here until
  /// its peer acks it. Unbounded if a peer stays down — the same deal the
  /// simulator's ReliableTransport offers.
  std::map<NodeId, SendState> send_;
  /// Highest sequence number delivered per peer (receive-side dedup;
  /// survives connection churn by construction, reset when the peer's
  /// hello announces a new epoch).
  std::map<NodeId, std::uint64_t> recv_seq_;
  /// Last boot epoch each peer announced (0 = legacy peer, unknown).
  std::map<NodeId, std::uint64_t> peer_epoch_;
  /// Total frames across send_ windows (loop thread writes, any thread
  /// reads via unacked()).
  std::atomic<std::size_t> unacked_frames_{0};
  /// Would-block accounting for send_window_limit: accepted-but-unacked
  /// sends per peer. Mutex-guarded (not loop-confined like send_) because
  /// send() must check-and-reserve from the caller's thread while the ack
  /// handler trims on the loop thread. Untouched when the limit is 0.
  std::mutex window_mu_;
  std::map<NodeId, std::size_t> window_pending_;
  /// Peers that have been connected at least once (distinguishes a
  /// reconnect from a first connect in stats()).
  std::map<NodeId, bool> ever_connected_;
  std::function<void(const Message&)> handler_;
  std::function<void(NodeId, bool)> on_suspect_;
  std::function<void(NodeId, const DecodedFrame&)> control_handler_;
  /// Failure detector (loop-confined): last time any byte was heard from
  /// each peer in the book, seeded at set_peers so a peer that never
  /// connects is suspected after one full window.
  std::map<NodeId, TimePoint> last_heard_;
  std::set<NodeId> suspected_;
  std::atomic<std::size_t> suspected_count_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::size_t> connected_peers_{0};

  /// Loop thread writes (relaxed), any thread reads via stats().
  struct StatCounters {
    std::atomic<std::uint64_t> dials{0};
    std::atomic<std::uint64_t> connect_failures{0};
    std::atomic<std::uint64_t> connects{0};
    std::atomic<std::uint64_t> accepts{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> decode_errors{0};
    std::atomic<std::uint64_t> requeued_frames{0};
    std::atomic<std::uint64_t> heartbeats_sent{0};
    std::atomic<std::uint64_t> idle_closes{0};
    std::atomic<std::uint64_t> sends_rejected{0};
    std::atomic<std::uint64_t> outbox_high_water{0};
    std::atomic<std::uint64_t> pending_high_water{0};
    std::atomic<std::uint64_t> batches_written{0};
    std::atomic<std::uint64_t> frames_per_batch[kBatchHistBuckets]{};
    std::atomic<std::uint64_t> acks_piggybacked{0};
    std::atomic<std::uint64_t> acks_standalone{0};
    std::atomic<std::uint64_t> peer_restarts{0};
    std::atomic<std::uint64_t> peers_suspected{0};
    std::atomic<std::uint64_t> suspicions_cleared{0};
  } stats_;
};

/// One stats line, e.g. for process-exit reporting:
/// `dials=3 connect_failures=1 ... peer_restarts=0`.
std::string to_string(const TcpStats& s);

}  // namespace hlock::net
