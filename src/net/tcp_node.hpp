// TcpNode — one protocol participant over real TCP sockets.
//
// Owns an EventLoop (run on a dedicated thread by the caller or
// InProcessCluster), a listening socket, and one connection per peer.
// Peers greet with a one-frame hello carrying their NodeId, so either side
// may dial. The Transport facade is thread-safe: send() posts onto the
// loop thread, which owns all sockets and the engine.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "msg/message.hpp"
#include "net/event_loop.hpp"
#include "net/framing.hpp"

namespace hlock::net {

struct PeerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port{0};
};

class TcpNode {
 public:
  /// Listens on 127.0.0.1:`port` (0 = ephemeral; see listen_port()).
  TcpNode(NodeId self, std::uint16_t port = 0);
  ~TcpNode();
  TcpNode(const TcpNode&) = delete;
  TcpNode& operator=(const TcpNode&) = delete;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }
  [[nodiscard]] EventLoop& loop() { return loop_; }

  /// Provide the address book. Only peers with id < self() are dialed
  /// (the higher id accepts), which yields exactly one connection per
  /// pair. Call from any thread before or after the loop starts.
  void set_peers(std::map<NodeId, PeerAddress> peers);

  /// Handler invoked on the loop thread for every received message.
  void set_handler(std::function<void(const Message&)> fn);

  /// Thread-safe Transport: enqueue a message to a peer.
  class NodeTransport final : public Transport {
   public:
    explicit NodeTransport(TcpNode& node) : node_(node) {}
    void send(NodeId to, Message m) override { node_.send(to, std::move(m)); }

   private:
    TcpNode& node_;
  };
  [[nodiscard]] Transport& transport() { return transport_; }

  /// Enqueue `m` for delivery to `to` (connects lazily if needed).
  void send(NodeId to, Message m);

  /// Messages delivered so far (loop thread increments; approximate from
  /// other threads).
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

 private:
  struct Connection {
    int fd{-1};
    NodeId peer{};           ///< invalid until hello received (inbound)
    FrameDecoder decoder;
    /// Pending output, contiguous so each readiness event needs exactly
    /// one write: bytes [outbox_pos, outbox.size()) are still unsent.
    std::vector<std::uint8_t> outbox;
    std::size_t outbox_pos{0};
    bool hello_sent{false};
  };

  void on_listen_ready();
  void on_conn_event(int fd, std::uint32_t revents);
  void flush(Connection& c);
  void close_conn(int fd);
  Connection* conn_for_peer(NodeId peer);
  void dial(NodeId peer);
  void queue_frame(Connection& c, const std::vector<std::uint8_t>& bytes);
  void send_hello(Connection& c);
  void handle_frame(Connection& c, const Message& m);

  const NodeId self_;
  EventLoop loop_;
  NodeTransport transport_;
  int listen_fd_{-1};
  std::uint16_t listen_port_{0};
  std::map<NodeId, PeerAddress> peers_;
  std::map<int, std::unique_ptr<Connection>> conns_;  ///< by fd
  std::map<NodeId, int> peer_fd_;
  /// Messages for peers whose connection is still being established.
  std::map<NodeId, std::vector<Message>> pending_out_;
  std::function<void(const Message&)> handler_;
  std::uint64_t delivered_{0};
};

}  // namespace hlock::net
