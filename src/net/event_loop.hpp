// Poll-based single-threaded event loop with timers and cross-thread task
// posting. One loop runs per TCP node; the protocol engine and all socket
// I/O for that node live on the loop thread, which keeps the engines'
// single-threaded contract without any locking inside the protocol.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <set>
#include <vector>

#include "common/executor.hpp"
#include "common/types.hpp"

namespace hlock::net {

class EventLoop final : public Executor {
 public:
  using IoFn = std::function<void(std::uint32_t revents)>;

  EventLoop();
  ~EventLoop() override;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watch `fd` for the given poll events (POLLIN etc.); `fn` runs on the
  /// loop thread when any fire. Replaces an existing watch for `fd`.
  void watch(int fd, short events, IoFn fn);
  void unwatch(int fd);

  /// Run `fn` on the loop thread as soon as possible. Thread-safe.
  void post(std::function<void()> fn);

  // Executor: timers on the loop thread. schedule() is loop-thread-only;
  // cross-thread callers use post() and schedule from inside.
  void schedule(Duration delay, std::function<void()> fn) override;
  [[nodiscard]] TimePoint now() const override;

  /// Like schedule(), but returns a token the caller may later pass to
  /// cancel_timer() (loop thread only). Tokens are never reused.
  std::uint64_t schedule_cancellable(Duration delay, std::function<void()> fn);
  /// Drop a pending timer; a no-op if it already fired or was cancelled.
  void cancel_timer(std::uint64_t id);

  /// Process events until stop() is called.
  void run();
  /// Request the loop to exit. Thread-safe.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  /// True when called from the thread currently executing run().
  [[nodiscard]] bool on_loop_thread() const;

 private:
  void drain_posted();
  void fire_due_timers();
  [[nodiscard]] int next_timeout_ms() const;

  struct Timer {
    TimePoint due;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Timer& o) const {
      if (due != o.due) return due > o.due;
      return seq > o.seq;
    }
  };

  int wake_fds_[2];  ///< self-pipe for post()/stop() wakeups
  std::map<int, std::pair<short, IoFn>> watches_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t timer_seq_{0};
  /// Tokens cancelled while still queued; entries are erased when the
  /// matching heap entry pops (the heap itself has no random removal).
  std::set<std::uint64_t> cancelled_timers_;
  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::thread::id> loop_thread_{};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace hlock::net
