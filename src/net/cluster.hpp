// InProcessCluster — N TcpNodes on loopback, each with its own event-loop
// thread, full peer mesh. The multi-node harness for integration tests and
// the real-socket examples.
#pragma once

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "net/tcp_node.hpp"

namespace hlock::net {

class InProcessCluster {
 public:
  /// `cfg` is applied to every node (tests use fast reconnect/heartbeat
  /// settings; the defaults suit interactive use).
  explicit InProcessCluster(std::size_t nodes, TcpConfig cfg = {});
  ~InProcessCluster();
  InProcessCluster(const InProcessCluster&) = delete;
  InProcessCluster& operator=(const InProcessCluster&) = delete;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] TcpNode& node(std::size_t i) { return *nodes_[i]; }

  /// Sum of every node's transport counters (for post-run assertions).
  [[nodiscard]] TcpStats total_stats() const;

  /// Stop every loop and join the threads (idempotent; the destructor
  /// calls it too).
  void stop();

 private:
  std::vector<std::unique_ptr<TcpNode>> nodes_;
  std::vector<std::thread> threads_;
  bool stopped_{false};
};

}  // namespace hlock::net
