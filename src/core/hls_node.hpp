// HlsNode — one per participant: owns an HlsEngine per lock object and
// demultiplexes incoming messages by lock id. The application sees a
// single pair of callbacks tagged with the lock.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "core/hls_engine.hpp"
#include "msg/message.hpp"

namespace hlock::core {

class HlsNode {
 public:
  using AcquiredFn = std::function<void(LockId, RequestId, Mode)>;
  using UpgradedFn = std::function<void(LockId, RequestId)>;

  HlsNode(NodeId self, Transport& transport, EngineOptions opts = {});

  /// Instantiate the engine for `lock`; `initial_holder` seeds the token
  /// tree and must be identical on every node. `initial_parent` optionally
  /// places this node in a non-star initial topology.
  HlsEngine& add_lock(LockId lock, NodeId initial_holder,
                      NodeId initial_parent = NodeId::invalid());

  /// Engine for a lock added earlier; throws if unknown — unless a lazy
  /// holder is installed, in which case the engine materializes on first
  /// touch (see set_lazy_holder).
  [[nodiscard]] HlsEngine& engine(LockId lock);
  [[nodiscard]] const HlsEngine* find(LockId lock) const;

  /// Many-lock mode: instead of add_lock()-ing every id up front (which
  /// costs a full engine per idle lock), install a function mapping a lock
  /// id to its initial token holder. engine() then materializes unknown
  /// locks on demand; an untouched lock costs one dense pointer slot.
  /// The mapping must be identical on every node of the cluster.
  void set_lazy_holder(std::function<NodeId(LockId)> holder_of) {
    lazy_holder_ = std::move(holder_of);
  }

  /// Pre-size the dense dispatch table (avoids growth reallocations when
  /// the id universe is known, e.g. the forest workload's per-tree space).
  void reserve_dense(std::uint32_t ids) {
    if (ids > kDenseLockLimit) ids = kDenseLockLimit;
    if (ids > dense_.size()) dense_.resize(ids, nullptr);
  }

  /// Install the cluster topology for locality-biased token service
  /// (borrowed; must outlive the node). Applies to every existing engine
  /// and to engines added or lazily materialized later. Without a map the
  /// locality_bias option is inert.
  void set_cluster_map(const ClusterMap* map);

  /// Crash recovery: apply the membership service's decision to every
  /// materialized engine (departed tombstones are skipped — they have no
  /// state to rebuild). The view is remembered, so an engine materialized
  /// lazily afterwards adopts it instead of starting at view 0 and
  /// fencing off all live traffic. A late-materialized engine joins with
  /// an empty attach barrier — sound for locks untouched before the
  /// crash (the lazy case's workload); locks with pre-crash remote state
  /// must be registered eagerly on every node.
  void begin_recovery(std::uint32_t view, NodeId new_root,
                      const std::set<NodeId>& survivors);

  /// Route one incoming message to its lock's engine.
  void handle(const Message& m);

  void set_on_acquired(AcquiredFn fn) { on_acquired_ = std::move(fn); }
  void set_on_upgraded(UpgradedFn fn) { on_upgraded_ = std::move(fn); }

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] std::size_t lock_count() const { return engines_.size(); }

  /// Visit every *materialized* engine in lock-id order (lazily-managed
  /// forests never instantiate the full id space, so observers — the
  /// deadlock monitor — must walk what exists rather than enumerate the
  /// universe).
  template <typename Fn>
  void for_each_engine(Fn&& fn) const {
    for (const auto& [lock, engine] : engines_) fn(lock, *engine);
  }

 private:
  NodeId self_;
  Transport& transport_;
  EngineOptions opts_;
  AcquiredFn on_acquired_;
  UpgradedFn on_upgraded_;
  std::function<NodeId(LockId)> lazy_holder_;
  const ClusterMap* cluster_map_{nullptr};
  /// Last committed recovery view (0 = none); adopted by engines that
  /// materialize after the recovery ran.
  std::uint32_t recovery_view_{0};
  NodeId recovery_root_{NodeId::invalid()};
  std::set<NodeId> recovery_survivors_;
  FlatMap<LockId, std::unique_ptr<HlsEngine>> engines_;
  /// O(1) lookup cache for small lock ids (the common, dense case): the
  /// engine() lookup is on the per-message hot path. Ids past the cap
  /// fall back to a binary search of the flat table.
  static constexpr std::uint32_t kDenseLockLimit = 1u << 20;
  std::vector<HlsEngine*> dense_;
};

}  // namespace hlock::core
