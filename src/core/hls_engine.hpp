// HlsEngine — the paper's hierarchical locking protocol (Rules 1-7,
// Figure 4 pseudocode), one instance per (node, lock object).
//
// Roles and state
// ---------------
// Nodes form a logical tree via parent pointers; the root holds the token.
// A node *holds* a mode while inside a critical section (Def. 2) and *owns*
// the strongest mode held or owned anywhere in its subtree (Def. 3).
// Children that were granted copies form the node's copyset (Def. 4),
// recorded here as `children()` with each child's last reported owned mode.
//
// Message flows (all five Figure 7 categories):
//   REQUEST  — guided along parent links toward a granter or the root
//   GRANT    — copy grant: requester becomes a child of the granter
//   TOKEN    — token transfer: requester becomes the new root; the old
//              root ships its local queue and becomes a child if it still
//              owns a mode
//   RELEASE  — child -> parent, only when the child's owned mode weakened
//              (Rule 5.2); carries the new owned mode
//   FREEZE   — root -> potential granters: replacement frozen-mode set
//              (Rule 6 / Table 2(b)) preserving FIFO fairness
//
// Threading contract: an engine is single-threaded. Callbacks
// (on_acquired / on_upgraded) may fire synchronously from inside an API
// call or handle(); they MUST NOT re-enter the engine — schedule follow-up
// work on your event loop instead (CP.con: keep the lock discipline in one
// place). Both the simulator and the TCP node runner obey this.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "common/cluster_map.hpp"
#include "common/flat_map.hpp"
#include "common/lamport.hpp"
#include "common/logging.hpp"
#include "common/types.hpp"
#include "core/mode.hpp"
#include "msg/message.hpp"

namespace hlock::core {

/// Feature toggles for the ablation benchmarks (DESIGN.md §6). Defaults
/// reproduce the paper's protocol exactly.
struct EngineOptions {
  /// Rule 3.1: non-token copyset members may grant compatible weaker
  /// requests themselves. Off: every request travels to the root.
  bool allow_child_grants = true;
  /// Rule 4.1 / Table 2(a): non-token nodes may queue requests locally
  /// behind their own pending request. Off: always forward.
  bool allow_local_queues = true;
  /// Rule 6 / Table 2(b): FIFO-preserving mode freezing. Off: requests can
  /// bypass queued incompatible requests (starvation possible).
  bool enable_freezing = true;
  /// Rule 5.2: releases propagate to the parent only when the owned mode
  /// weakens. Off ("eager"): every release is reported upward, the
  /// strawman the paper compares against in §3.2.
  bool lazy_release = true;
  /// Extension (intro / Mueller [11,12]): arbitrate queued requests by
  /// priority (higher first, FIFO within a level) instead of pure FIFO.
  /// Upgrades retain their Rule 7 precedence regardless.
  bool enable_priorities = false;

  /// Extension (topology-aware locking, after Chabbi et al.'s hierarchical
  /// MCS locks): the token node may serve queued same-cluster requests
  /// ahead of an older cross-cluster head, batching token hand-offs and
  /// copy grants inside a cluster before the token crosses the expensive
  /// boundary. Inert without a ClusterMap (set_cluster_map) — flat
  /// topologies behave exactly like the paper's protocol. Upgrades keep
  /// strict Rule 7 precedence; safety rules are unchanged (only the order
  /// among servable queued requests moves).
  bool locality_bias = false;
  /// Fairness cap on the bias: how many queued requests may be served past
  /// a bypassed queue head before service reverts to strict FIFO. The
  /// bypass streak travels with the token (Message::grant_seq on kToken /
  /// kHandoff), so the bound holds globally across same-cluster hand-offs:
  /// a remote head waits at most this many out-of-order services, ever.
  std::uint8_t locality_fairness_cap = 4;

  /// Field-wise equality (sweep-runner memo cache key).
  bool operator==(const EngineOptions&) const = default;
};

/// Application-facing notifications.
struct EngineCallbacks {
  /// A request issued via request_lock() has been granted in `mode`.
  std::function<void(RequestId, Mode)> on_acquired;
  /// An upgrade issued via upgrade() completed; the hold is now W.
  std::function<void(RequestId)> on_upgraded;
};

class HlsEngine {
 public:
  /// `initial_token_holder` seeds the tree: that node starts as root. A
  /// non-root node's parent pointer starts at `initial_parent` when given
  /// (the chain must lead to the root — the paper's Figure 1 topologies),
  /// else directly at the root (star, as after full path compression).
  HlsEngine(LockId lock, NodeId self, NodeId initial_token_holder,
            Transport& transport, EngineOptions opts = {},
            EngineCallbacks callbacks = {},
            NodeId initial_parent = NodeId::invalid());

  HlsEngine(const HlsEngine&) = delete;
  HlsEngine& operator=(const HlsEngine&) = delete;

  // ---- application API -------------------------------------------------

  /// Request the lock in `mode` (any real mode). Returns the request id;
  /// on_acquired fires when granted (possibly synchronously, see the
  /// threading contract above). Requests from one node are served in issue
  /// order. `priority` only matters with EngineOptions::enable_priorities.
  RequestId request_lock(Mode mode, std::uint8_t priority = 0);

  /// Non-blocking attempt: acquire `mode` only if Rule 2 admits it with
  /// zero messages (sufficient owned mode, compatible, not frozen, no
  /// earlier local request outstanding). Returns the hold's id on success,
  /// nothing otherwise; never sends a message. This is the semantics the
  /// CosConcurrency-style facade exposes as try_lock.
  std::optional<RequestId> try_request_lock(Mode mode);

  /// Release a hold previously granted through on_acquired.
  void unlock(RequestId id);

  /// Cancel a request that has not been granted yet. Returns true if the
  /// request will never be granted (removed from backlog, or marked so an
  /// eventual grant is auto-released silently); false if it was already
  /// granted (the caller owns a hold and must unlock it). Cancellation
  /// never sends messages — a remote queue entry simply gets its grant
  /// absorbed when it arrives.
  bool cancel(RequestId id);

  /// Atomically weaken a hold to `mode` (safe_downgrade(held, mode) must
  /// allow it); kNone is equivalent to unlock. The owned-mode weakening
  /// propagates per Rule 5.2 like any release.
  void downgrade(RequestId id, Mode mode);

  /// Rule 7: atomically upgrade a held U lock to W without releasing U.
  /// `id` must currently hold U. on_upgraded fires when the hold is W.
  void upgrade(RequestId id);

  /// Dynamic membership: gracefully depart this lock's tree. Requires no
  /// holds and no outstanding local requests (drain first). Children are
  /// told to re-attach to the successor (kReparent -> they kAttach with
  /// their authoritative owned mode over their own FIFO channel); a held
  /// token is handed off unsolicited (kHandoff) with the local queue.
  /// Afterwards the engine is a tombstone that only redirects strays —
  /// probable-owner hints at other nodes may still name us indefinitely.
  /// `successor_if_root`: required when we hold the token (any live
  /// node); ignored otherwise (the parent is the successor).
  void leave(NodeId successor_if_root = NodeId::invalid());

  [[nodiscard]] bool departed() const { return departed_; }

  /// Crash recovery (view change). A membership/view service (external to
  /// the protocol, as in production DLMs) decides that one or more nodes
  /// crashed, picks a surviving `new_root`, assigns a fresh `view` number
  /// and calls this on every survivor. The engine:
  ///   * adopts the view (messages from older views are fenced off — a
  ///     stale pre-crash token can never resurface),
  ///   * discards all tree state (parent, copyset, queue, frozen sets,
  ///     grant counters) while KEEPING local holds and the pending/backlog
  ///     requests,
  ///   * re-attaches to the new root with its authoritative owned mode,
  ///   * re-issues its pending request.
  /// Holds and queue entries of crashed nodes simply never re-attach and
  /// are thereby dropped. Requires new_view > the current view.
  ///
  /// `survivors` is the full live membership of the new view (as decided
  /// by the view service; must include self and new_root). The new root
  /// runs a BARRIER: every survivor sends an attach (a ping when it owns
  /// nothing), and no queued request is served until all have arrived —
  /// otherwise the root could grant W while another survivor's hold
  /// registration is still in flight.
  void begin_recovery(std::uint32_t new_view, NodeId new_root,
                      const std::set<NodeId>& survivors);

  [[nodiscard]] std::uint32_t view() const { return view_; }

  /// Topology for EngineOptions::locality_bias (borrowed; must outlive the
  /// engine and be identical on every node). Without one the bias is
  /// inert. Install before any traffic flows.
  void set_cluster_map(const ClusterMap* map) { clusters_ = map; }
  /// Current head-bypass streak (tests): services performed past an older
  /// queued request since the last strict-FIFO head service.
  [[nodiscard]] std::uint32_t locality_streak() const {
    return locality_streak_;
  }

  // ---- protocol entry point --------------------------------------------

  /// Feed one incoming message (kinds kRequest..kFreeze) for this lock.
  void handle(const Message& m);

  // ---- introspection (tests, invariant probes, metrics) -----------------

  [[nodiscard]] LockId lock() const { return lock_; }
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] bool is_token_node() const { return has_token_; }
  [[nodiscard]] NodeId parent() const { return parent_; }
  /// Strongest mode this node itself currently holds (Def. 2).
  [[nodiscard]] Mode held_mode() const;
  /// Strongest mode held/owned in the subtree rooted here (Def. 3).
  [[nodiscard]] Mode owned_mode() const;
  /// Copyset view (child -> last reported owned mode), sorted by node id.
  /// Backed by a flat sorted vector; same iteration order and lookup
  /// interface as the std::map it replaced.
  [[nodiscard]] const FlatMap<NodeId, Mode>& children() const {
    return children_;
  }
  [[nodiscard]] ModeSet frozen() const { return frozen_; }
  [[nodiscard]] const std::deque<QueuedRequest>& queue() const {
    return queue_;
  }
  /// All live holds (request id -> mode), sorted by request id.
  [[nodiscard]] const FlatMap<RequestId, Mode>& holds() const {
    return holds_;
  }
  /// True if a local request is pending in the protocol (sent upward or
  /// queued somewhere).
  [[nodiscard]] bool has_pending() const { return pending_.has_value(); }
  /// Mode of the pending local request (kNone when none) — diagnostic
  /// input to the wait-for-graph deadlock detector.
  [[nodiscard]] Mode pending_request_mode() const {
    return pending_ ? pending_->mode : Mode::kNone;
  }
  [[nodiscard]] std::size_t backlog_size() const { return backlog_.size(); }

 private:
  /// A local request that is "in the protocol": sent to the parent or
  /// sitting in a queue (ours while we are root, or shipped with the
  /// token). At most one exists; later local requests wait in backlog_.
  struct PendingLocal {
    RequestId id{};
    Mode mode{Mode::kNone};
    LamportStamp stamp{};
    bool upgrade{false};
    std::uint8_t priority{0};
  };

  // -- derived state helpers (all O(1): computed from the per-mode count
  // arrays maintained incrementally by the set_/erase_ mutators below,
  // instead of rescanning children_/holds_ on every message) --
  [[nodiscard]] Mode children_mode() const;
  /// Owned mode with one child's contribution removed (upgrade checks).
  [[nodiscard]] Mode owned_mode_excluding_child(NodeId child) const;
  /// Owned mode with one local hold removed (token-side upgrade check).
  [[nodiscard]] Mode owned_mode_excluding_hold(RequestId id) const;

  // -- aggregate-maintaining mutators (the ONLY places children_ / holds_
  // may be modified, so the count arrays never drift) --
  void set_child(NodeId child, Mode mode);
  void erase_child(NodeId child);
  void clear_children();
  void set_hold(RequestId id, Mode mode);
  void erase_hold(FlatMap<RequestId, Mode>::iterator it);
  /// Strongest mode with a nonzero count, starting the fold at `base`.
  [[nodiscard]] static Mode strongest_counted(
      const std::array<std::uint32_t, kModeCount>& counts, Mode base,
      Mode exclude_one = Mode::kNone);
  [[nodiscard]] Mode pending_mode() const {
    return pending_ ? pending_->mode : Mode::kNone;
  }

  // -- local request plumbing --
  void start_local_request(PendingLocal req);
  void admit_local(RequestId id, Mode mode);
  void resolve_pending_with_grant(Mode mode);
  void pump_backlog();

  // -- message handlers --
  void handle_request(const Message& m);
  void handle_request_as_token(const QueuedRequest& q);
  void handle_request_as_nontoken(const QueuedRequest& q);
  void handle_grant(const Message& m);
  void handle_token(const Message& m);
  void handle_release(const Message& m);
  void handle_freeze(const Message& m);
  void handle_reparent(const Message& m);
  void handle_attach(const Message& m);
  void handle_handoff(const Message& m);
  void handle_departed(const Message& m);

  // -- granting machinery --
  /// Insert into the local queue honouring upgrade precedence and, when
  /// enabled, priority order (else FIFO).
  void enqueue(const QueuedRequest& q);
  void grant_copy(const QueuedRequest& q);
  void transfer_token(const QueuedRequest& q);
  /// Locality bias: true when the token could serve queue entry `q` right
  /// now (mirrors the head-first service cases; upgrades excluded — they
  /// are always served strictly head-first).
  [[nodiscard]] bool token_can_serve_now(const QueuedRequest& q) const;
  /// Index of the queue entry the token serves next: 0 (strict FIFO)
  /// unless locality bias is active, under its fairness cap, and a
  /// same-cluster entry is servable earlier than the head allows.
  [[nodiscard]] std::size_t pick_queue_index() const;
  bool try_serve_upgrade_as_token(const QueuedRequest& q);
  /// Serve the queue head-first while possible (token pseudocode loop).
  void check_queue_token();
  /// Re-triage the local queue after the pending request resolved or a
  /// release arrived: grant / keep / forward per Rules 3.1 and 4.1.
  void check_queue_nontoken();
  void check_queue();

  // -- releases --
  /// After any weakening event: propagate RELEASE if Rule 5.2 demands it.
  void propagate_release_if_needed(Mode owned_before);
  /// On re-parenting (grant/token from a node other than the current
  /// parent) while still owning a mode: leave the old parent's copyset.
  void detach_from_old_parent(NodeId new_parent);

  // -- freezing --
  void recompute_frozen_token();
  void push_freeze_updates();
  [[nodiscard]] bool is_potential_granter(Mode child_owned,
                                          ModeSet modes) const;

  void send(NodeId to, Message m);
  [[nodiscard]] RequestId fresh_request_id();

  // -- immutable identity --
  const LockId lock_;
  const NodeId self_;
  Transport& transport_;
  const EngineOptions opts_;
  EngineCallbacks callbacks_;

  // -- tree / token state --
  // All per-peer tables below are flat sorted vectors (common/flat_map.hpp)
  // rather than rb-trees: copysets are small, every handle() touches
  // several of them, and the flat layout keeps the whole engine state in a
  // few cache lines with zero steady-state allocation.
  bool has_token_;
  NodeId parent_;  ///< invalid while root
  FlatMap<NodeId, Mode> children_;
  /// How many children currently own each mode (incremental aggregate
  /// behind the O(1) children_mode() / owned_mode_excluding_child()).
  std::array<std::uint32_t, kModeCount> child_mode_count_{};

  // -- lock state --
  FlatMap<RequestId, Mode> holds_;
  /// How many local holds are in each mode (same idea as above).
  std::array<std::uint32_t, kModeCount> hold_mode_count_{};
  std::optional<PendingLocal> pending_;
  std::deque<PendingLocal> backlog_;
  std::deque<QueuedRequest> queue_;
  ModeSet frozen_;
  /// Last frozen set pushed to each child, to send deltas only.
  FlatMap<NodeId, ModeSet> sent_frozen_;
  /// Set whenever children_ / frozen_ / sent_frozen_ change; lets
  /// push_freeze_updates() skip its full-children scan on the (common)
  /// calls where nothing it depends on moved since the last push.
  bool freeze_sync_needed_{true};
  /// Grants sent per child / received per parent — releases echo the
  /// received count so a release that crossed a newer grant in flight can
  /// be recognized as stale and dropped (see Message::grant_seq).
  FlatMap<NodeId, std::uint64_t> grants_sent_;
  FlatMap<NodeId, std::uint64_t> grants_received_;
  /// Pending upgrade bookkeeping: the hold being upgraded.
  std::optional<RequestId> upgrading_hold_;
  /// Requests cancelled while in flight: their grant is absorbed.
  FlatSet<RequestId> cancelled_;

  /// Tombstone state after leave(): parent_ holds the forwarding target.
  bool departed_{false};
  /// Recovery view; messages from other views are dropped.
  std::uint32_t view_{0};
  /// Barrier (root only): survivors whose recovery attach is still due.
  /// Queue service is deferred while non-empty.
  FlatSet<NodeId> recovery_waiting_;

  /// Topology for locality_bias; null = flat (bias inert).
  const ClusterMap* clusters_{nullptr};
  /// Consecutive out-of-FIFO-order services since the queue head was last
  /// served (ships with the token so the fairness cap binds globally).
  /// Always 0 while the bias is off — nothing changes on the wire.
  std::uint32_t locality_streak_{0};

  LamportClock lamport_;
  std::uint64_t next_request_{1};
};

}  // namespace hlock::core
