#include "core/hls_engine.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace hlock::core {

namespace {
constexpr Mode kNone = Mode::kNone;
}

HlsEngine::HlsEngine(LockId lock, NodeId self, NodeId initial_token_holder,
                     Transport& transport, EngineOptions opts,
                     EngineCallbacks callbacks, NodeId initial_parent)
    : lock_(lock),
      self_(self),
      transport_(transport),
      opts_(opts),
      callbacks_(std::move(callbacks)),
      has_token_(self == initial_token_holder),
      parent_(has_token_ ? NodeId::invalid()
                         : (initial_parent.valid() ? initial_parent
                                                   : initial_token_holder)),
      lamport_(self) {
  if (!self.valid() || !initial_token_holder.valid())
    throw std::invalid_argument("invalid node id");
  if (parent_ == self_)
    throw std::invalid_argument("a node cannot be its own parent");
}

// ---------------------------------------------------------------------------
// Derived state
// ---------------------------------------------------------------------------

Mode HlsEngine::strongest_counted(
    const std::array<std::uint32_t, kModeCount>& counts, Mode base,
    Mode exclude_one) {
  // kRealModes is in strength order, so folding with strongest() yields
  // the same result (including the U-before-IW tie pick) as scanning the
  // backing map did. `exclude_one` removes a single known entry's
  // contribution without materializing a copy of the map.
  Mode m = base;
  for (const Mode r : kRealModes) {
    std::uint32_t c = counts[static_cast<int>(r)];
    if (r == exclude_one && c > 0) --c;
    if (c != 0) m = strongest(m, r);
  }
  return m;
}

Mode HlsEngine::held_mode() const {
  return strongest_counted(hold_mode_count_, kNone);
}

Mode HlsEngine::children_mode() const {
  return strongest_counted(child_mode_count_, kNone);
}

Mode HlsEngine::owned_mode() const {
  return strongest(held_mode(), children_mode());
}

Mode HlsEngine::owned_mode_excluding_child(NodeId child) const {
  const auto it = children_.find(child);
  const Mode excluded = it == children_.end() ? kNone : it->second;
  return strongest_counted(child_mode_count_, held_mode(), excluded);
}

Mode HlsEngine::owned_mode_excluding_hold(RequestId id) const {
  const auto it = holds_.find(id);
  const Mode excluded = it == holds_.end() ? kNone : it->second;
  return strongest_counted(hold_mode_count_, children_mode(), excluded);
}

// ---------------------------------------------------------------------------
// Aggregate-maintaining mutators
// ---------------------------------------------------------------------------

void HlsEngine::set_child(NodeId child, Mode mode) {
  freeze_sync_needed_ = true;
  const auto [it, inserted] = children_.try_emplace(child, mode);
  if (inserted) {
    ++child_mode_count_[static_cast<int>(mode)];
    return;
  }
  --child_mode_count_[static_cast<int>(it->second)];
  ++child_mode_count_[static_cast<int>(mode)];
  it->second = mode;
}

void HlsEngine::erase_child(NodeId child) {
  freeze_sync_needed_ = true;
  const auto it = children_.find(child);
  if (it == children_.end()) return;
  --child_mode_count_[static_cast<int>(it->second)];
  children_.erase(it);
}

void HlsEngine::clear_children() {
  freeze_sync_needed_ = true;
  children_.clear();
  child_mode_count_.fill(0);
}

void HlsEngine::set_hold(RequestId id, Mode mode) {
  const auto [it, inserted] = holds_.try_emplace(id, mode);
  if (inserted) {
    ++hold_mode_count_[static_cast<int>(mode)];
    return;
  }
  --hold_mode_count_[static_cast<int>(it->second)];
  ++hold_mode_count_[static_cast<int>(mode)];
  it->second = mode;
}

void HlsEngine::erase_hold(FlatMap<RequestId, Mode>::iterator it) {
  --hold_mode_count_[static_cast<int>(it->second)];
  holds_.erase(it);
}

RequestId HlsEngine::fresh_request_id() {
  return RequestId{(static_cast<std::uint64_t>(self_.value) << 32) |
                   next_request_++};
}

void HlsEngine::send(NodeId to, Message m) {
  m.lock = lock_;
  m.from = self_;
  m.view = view_;
  transport_.send(to, std::move(m));
}

// ---------------------------------------------------------------------------
// Application API
// ---------------------------------------------------------------------------

RequestId HlsEngine::request_lock(Mode mode, std::uint8_t priority) {
  if (mode == kNone) throw std::invalid_argument("cannot request mode ∅");
  PendingLocal req;
  req.id = fresh_request_id();
  req.mode = mode;
  req.stamp = lamport_.tick();
  req.upgrade = false;
  req.priority = priority;
  if (pending_ || !backlog_.empty()) {
    backlog_.push_back(req);
  } else {
    start_local_request(req);
  }
  return req.id;
}

void HlsEngine::start_local_request(PendingLocal req) {
  const Mode mo = owned_mode();
  const bool frozen_blocks =
      opts_.enable_freezing && frozen_.contains(req.mode);

  if (req.upgrade) {
    // Rule 7. The hold stays U throughout; no release happens.
    upgrading_hold_ = req.id;
    if (has_token_ && owned_mode_excluding_hold(req.id) == kNone) {
      set_hold(req.id, Mode::kW);
      upgrading_hold_.reset();
      if (callbacks_.on_upgraded) callbacks_.on_upgraded(req.id);
      return;
    }
    pending_ = req;
    if (has_token_) {
      // Rule 7 gives upgrades priority: a queued request incompatible
      // with the held U necessarily arrived after it, and serving it
      // first would deadlock against the never-released U.
      enqueue(QueuedRequest{self_, Mode::kW, req.stamp, true,
                            req.priority});
      recompute_frozen_token();
      push_freeze_updates();
    } else {
      Message m;
      m.kind = MsgKind::kRequest;
      m.req = QueuedRequest{self_, Mode::kW, req.stamp, true, req.priority};
      send(parent_, m);
    }
    return;
  }

  if (has_token_) {
    // Figure 4 RequestLock, token branch: compatibility with the owned
    // mode is necessary and sufficient (Rule 3.2) unless frozen (Rule 6).
    // During a recovery barrier only Rule 2's non-token condition is safe
    // (survivor holds may still be unregistered).
    if (compatible(mo, req.mode) && !frozen_blocks &&
        (recovery_waiting_.empty() || stronger_or_equal(mo, req.mode))) {
      admit_local(req.id, req.mode);
      return;
    }
    pending_ = req;
    enqueue(QueuedRequest{self_, req.mode, req.stamp, false, req.priority});
    recompute_frozen_token();
    push_freeze_updates();
    return;
  }

  // Rule 2, non-token: enter without messages iff we already own a
  // sufficient compatible mode and the mode is not frozen.
  if (stronger_or_equal(mo, req.mode) && compatible(mo, req.mode) &&
      !frozen_blocks) {
    admit_local(req.id, req.mode);
    return;
  }
  pending_ = req;
  Message m;
  m.kind = MsgKind::kRequest;
  m.req = QueuedRequest{self_, req.mode, req.stamp, false, req.priority};
  send(parent_, m);
}

void HlsEngine::admit_local(RequestId id, Mode mode) {
  if (cancelled_.erase(id) > 0) {
    // Cancelled while in flight: the grant is accounted and immediately
    // released, with no application callback.
    set_hold(id, mode);
    unlock(id);
    return;
  }
  set_hold(id, mode);
  HLOCK_LOG(kTrace, "node " << self_ << " lock " << lock_ << " acquired "
                            << mode << " locally");
  if (callbacks_.on_acquired) callbacks_.on_acquired(id, mode);
}

bool HlsEngine::cancel(RequestId id) {
  if (upgrading_hold_ == id || (pending_ && pending_->upgrade &&
                                pending_->id == id))
    throw std::logic_error("cannot cancel an upgrade (U stays held)");
  if (holds_.count(id) != 0) return false;  // already granted
  for (auto it = backlog_.begin(); it != backlog_.end(); ++it) {
    if (it->id == id) {
      backlog_.erase(it);
      return true;
    }
  }
  if (pending_ && pending_->id == id) {
    if (pending_->upgrade)
      throw std::logic_error("cannot cancel an upgrade (U stays held)");
    cancelled_.insert(id);
    return true;
  }
  throw std::logic_error("cancel of unknown or already-released request");
}

std::optional<RequestId> HlsEngine::try_request_lock(Mode mode) {
  if (mode == kNone) throw std::invalid_argument("cannot request mode ∅");
  // An earlier local request is still outstanding; granting out of order
  // would break per-node FIFO.
  if (pending_ || !backlog_.empty()) return std::nullopt;
  const Mode mo = owned_mode();
  const bool frozen_blocks = opts_.enable_freezing && frozen_.contains(mode);
  const bool admissible =
      has_token_ && recovery_waiting_.empty()
          ? (compatible(mo, mode) && !frozen_blocks)
          : (stronger_or_equal(mo, mode) && compatible(mo, mode) &&
             !frozen_blocks);
  if (!admissible) return std::nullopt;
  const RequestId id = fresh_request_id();
  admit_local(id, mode);
  return id;
}

void HlsEngine::downgrade(RequestId id, Mode mode) {
  if (mode == kNone) {
    unlock(id);
    return;
  }
  const auto it = holds_.find(id);
  if (it == holds_.end())
    throw std::logic_error("downgrade of unheld request");
  if (upgrading_hold_ == id)
    throw std::logic_error("downgrade of a hold with an upgrade in flight");
  if (!safe_downgrade(it->second, mode))
    throw std::logic_error("not a safe downgrade");
  const Mode owned_before = owned_mode();
  set_hold(id, mode);

  if (has_token_) {
    check_queue_token();
    if (has_token_) {
      recompute_frozen_token();
      push_freeze_updates();
    }
  } else {
    propagate_release_if_needed(owned_before);
    check_queue_nontoken();
  }
  pump_backlog();
}

void HlsEngine::unlock(RequestId id) {
  const auto it = holds_.find(id);
  if (it == holds_.end()) throw std::logic_error("unlock of unheld request");
  if (upgrading_hold_ == id)
    throw std::logic_error("unlock of a hold with an upgrade in flight");
  const Mode owned_before = owned_mode();
  erase_hold(it);

  if (has_token_) {
    check_queue_token();
    if (has_token_) {
      recompute_frozen_token();
      push_freeze_updates();
    }
  } else {
    propagate_release_if_needed(owned_before);
    check_queue_nontoken();
  }
  pump_backlog();
}

void HlsEngine::upgrade(RequestId id) {
  const auto it = holds_.find(id);
  if (it == holds_.end() || it->second != Mode::kU)
    throw std::logic_error("upgrade requires a held U lock");
  if (upgrading_hold_) throw std::logic_error("upgrade already in flight");
  PendingLocal req;
  req.id = id;  // the upgrade keeps the original request id
  req.mode = Mode::kW;
  req.stamp = lamport_.tick();
  req.upgrade = true;
  if (pending_ || !backlog_.empty()) {
    backlog_.push_back(req);
  } else {
    start_local_request(req);
  }
}

void HlsEngine::pump_backlog() {
  while (!pending_ && !backlog_.empty()) {
    PendingLocal req = backlog_.front();
    backlog_.pop_front();
    start_local_request(req);
  }
}

void HlsEngine::resolve_pending_with_grant(Mode mode) {
  const PendingLocal req = *pending_;
  pending_.reset();
  if (req.upgrade) {
    set_hold(req.id, Mode::kW);
    upgrading_hold_.reset();
    if (callbacks_.on_upgraded) callbacks_.on_upgraded(req.id);
  } else {
    admit_local(req.id, mode);
  }
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

void HlsEngine::handle(const Message& m) {
  if (m.lock != lock_) {
    std::ostringstream os;
    os << "message for wrong lock: engine (node " << self_ << ", lock "
       << lock_ << ") got " << to_string(m.kind) << " for lock " << m.lock
       << " from " << m.from;
    throw std::logic_error(os.str());
  }
  if (m.view != view_) {
    // Fencing: traffic from a pre-recovery view (e.g. the old token still
    // in flight when the crash was declared) must not contaminate the
    // rebuilt tree.
    HLOCK_LOG(kDebug, "node " << self_ << " drops view-" << m.view
                              << " message in view " << view_);
    return;
  }
  if (departed_) {
    handle_departed(m);
    return;
  }
  switch (m.kind) {
    case MsgKind::kRequest: handle_request(m); return;
    case MsgKind::kGrant: handle_grant(m); return;
    case MsgKind::kToken: handle_token(m); return;
    case MsgKind::kRelease: handle_release(m); return;
    case MsgKind::kFreeze: handle_freeze(m); return;
    case MsgKind::kReparent: handle_reparent(m); return;
    case MsgKind::kAttach: handle_attach(m); return;
    case MsgKind::kHandoff: handle_handoff(m); return;
    default: throw std::logic_error("unexpected message kind for HlsEngine");
  }
}

// ---------------------------------------------------------------------------
// Dynamic membership (leave / reparent / attach / handoff)
// ---------------------------------------------------------------------------

void HlsEngine::leave(NodeId successor_if_root) {
  if (departed_) throw std::logic_error("already departed");
  if (!holds_.empty()) throw std::logic_error("leave with live holds");
  if (pending_ || !backlog_.empty())
    throw std::logic_error("leave with outstanding requests");

  const NodeId successor = has_token_ ? successor_if_root : parent_;
  if (!successor.valid() || successor == self_)
    throw std::invalid_argument("leave requires a valid successor");

  // Children re-attach themselves: they answer with kAttach carrying
  // their authoritative owned mode on their own (FIFO) channel to the
  // successor, which closes the delegate-vs-release races a push-style
  // handover would have.
  const bool owned_something = !children_.empty();
  for (const auto& [child, mode] : children_) {
    Message r;
    r.kind = MsgKind::kReparent;
    r.req.requester = successor;
    send(child, r);
  }
  clear_children();
  sent_frozen_.clear();

  if (has_token_) {
    Message h;
    h.kind = MsgKind::kHandoff;
    h.queue = transport_.acquire_queue_buffer();
    h.queue.assign(queue_.begin(), queue_.end());
    queue_.clear();
    h.grant_seq = locality_streak_;  // see transfer_token
    locality_streak_ = 0;
    has_token_ = false;
    send(successor, std::move(h));
  } else {
    // Requests we queued behind our (now resolved) pending: forward them
    // toward the root before going dark.
    for (const QueuedRequest& q : queue_) {
      Message fwd;
      fwd.kind = MsgKind::kRequest;
      fwd.req = q;
      send(parent_, fwd);
    }
    queue_.clear();
    if (owned_something) {
      // Deregister ourselves: our contribution to the parent's copyset is
      // gone (no holds; the children now attach directly to it). An idle
      // non-owner already dropped out of the copyset when it released.
      Message r;
      r.kind = MsgKind::kRelease;
      r.mode = kNone;
      r.grant_seq = grants_received_[parent_];
      send(parent_, r);
    }
  }

  frozen_.clear();
  parent_ = successor;
  departed_ = true;
}

void HlsEngine::begin_recovery(std::uint32_t new_view, NodeId new_root,
                               const std::set<NodeId>& survivors) {
  if (departed_) throw std::logic_error("departed engines do not recover");
  if (new_view <= view_)
    throw std::invalid_argument("recovery view must increase");
  if (!new_root.valid()) throw std::invalid_argument("invalid new root");
  if (survivors.count(self_) == 0 || survivors.count(new_root) == 0)
    throw std::invalid_argument("survivors must include self and new root");
  view_ = new_view;

  // Tree state is rebuilt from scratch; local intent (holds, pending,
  // backlog) survives.
  clear_children();
  sent_frozen_.clear();
  queue_.clear();
  frozen_.clear();
  grants_sent_.clear();
  grants_received_.clear();
  // The head-bypass streak is token state; a regenerated token starts
  // fresh or the pre-crash streak would wrongly suppress (or permit)
  // bypasses in the new view.
  locality_streak_ = 0;

  has_token_ = self_ == new_root;
  parent_ = has_token_ ? NodeId::invalid() : new_root;
  recovery_waiting_.clear();

  if (has_token_) {
    recovery_waiting_.insert(survivors.begin(), survivors.end());
    recovery_waiting_.erase(self_);
  }

  if (!has_token_) {
    // Re-attach with our authoritative owned mode — ALWAYS, even when we
    // own nothing (the ping completes the root's barrier).
    {
      Message a;
      a.kind = MsgKind::kAttach;
      a.mode = owned_mode();
      send(parent_, a);
    }
    if (pending_) {
      Message m;
      m.kind = MsgKind::kRequest;
      m.req = QueuedRequest{self_, pending_->mode, pending_->stamp,
                            pending_->upgrade, pending_->priority};
      send(parent_, m);
    }
  } else if (pending_) {
    // The new root re-queues its own outstanding request; it is served
    // when the barrier completes.
    enqueue(QueuedRequest{self_, pending_->mode, pending_->stamp,
                          pending_->upgrade, pending_->priority});
  }
  if (has_token_ && recovery_waiting_.empty()) {
    check_queue_token();
    if (has_token_) recompute_frozen_token();
  }
}

void HlsEngine::handle_departed(const Message& m) {
  switch (m.kind) {
    case MsgKind::kRequest: {
      // Keep routing toward the live tree.
      Message fwd;
      fwd.kind = MsgKind::kRequest;
      fwd.req = m.req;
      send(parent_, fwd);
      return;
    }
    case MsgKind::kHandoff: {
      // A cascading leave picked us as successor after we left ourselves.
      Message fwd = m;
      send(parent_, std::move(fwd));
      return;
    }
    case MsgKind::kAttach: {
      // Someone was told to attach to us; redirect them.
      Message r;
      r.kind = MsgKind::kReparent;
      r.req.requester = parent_;
      send(m.from, r);
      return;
    }
    case MsgKind::kReparent:
      // Keep our forwarding target fresh.
      parent_ = m.req.requester;
      return;
    case MsgKind::kRelease:
    case MsgKind::kFreeze:
      return;  // stale; the sender has been / will be re-parented
    default:
      HLOCK_LOG(kError, "departed node " << self_ << " got "
                                         << to_string(m.kind));
      return;
  }
}

void HlsEngine::handle_reparent(const Message& m) {
  if (has_token_) return;  // stale: we became the root meanwhile
  const NodeId new_parent = m.req.requester;
  if (!new_parent.valid() || new_parent == self_) return;
  parent_ = new_parent;
  if (owned_mode() == kNone) return;  // plain probable-owner hint update
  Message a;
  a.kind = MsgKind::kAttach;
  a.mode = owned_mode();
  a.grant_seq = grants_received_[new_parent];
  send(new_parent, a);
}

void HlsEngine::handle_attach(const Message& m) {
  const bool barrier_open = !recovery_waiting_.empty();
  recovery_waiting_.erase(m.from);
  if (m.mode != kNone) {
    set_child(m.from, m.mode);   // authoritative snapshot from the child
    sent_frozen_.erase(m.from);  // unknown; recomputed on the next push
  }
  if (barrier_open && !recovery_waiting_.empty()) return;  // still waiting
  if (has_token_) {
    check_queue_token();
    if (has_token_) {
      recompute_frozen_token();
    }
  }
  push_freeze_updates();
}

void HlsEngine::handle_handoff(const Message& m) {
  // Unsolicited token from a departing root. Unlike kToken this answers
  // no local request; our own queued entries (if our request sat in the
  // leaver's queue) stay in and get served by check_queue_token.
  has_token_ = true;
  parent_ = NodeId::invalid();
  locality_streak_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(m.grant_seq, 0xffffffffULL));

  std::deque<QueuedRequest> merged;
  merged.insert(merged.end(), m.queue.begin(), m.queue.end());
  merged.insert(merged.end(), queue_.begin(), queue_.end());
  std::stable_sort(merged.begin(), merged.end(),
                   [this](const QueuedRequest& a, const QueuedRequest& b) {
                     if (opts_.enable_priorities) return priority_before(a, b);
                     return a.stamp < b.stamp;
                   });
  std::stable_partition(merged.begin(), merged.end(),
                        [](const QueuedRequest& r) { return r.upgrade; });
  queue_ = std::move(merged);

  check_queue_token();
  if (has_token_) {
    recompute_frozen_token();
    push_freeze_updates();
  }
  pump_backlog();
}

void HlsEngine::handle_request(const Message& m) {
  QueuedRequest q = m.req;
  lamport_.observe(q.stamp);

  if (q.requester == self_) {
    // A request of ours was routed back to us (it was queued at an
    // intermediate node which later forwarded it while we became its
    // parent, or we became the root in the meantime).
    HLOCK_LOG(kDebug, "node " << self_ << " saw its own request return");
    if (!pending_ || pending_->stamp != q.stamp) return;  // already served
    if (!has_token_) {
      Message fwd;
      fwd.kind = MsgKind::kRequest;
      fwd.req = q;
      send(parent_, fwd);
      return;
    }
    // We are the root now: treat it exactly like the token-node branch of
    // RequestLock — admit if possible, otherwise queue as a self entry.
    if (std::find_if(queue_.begin(), queue_.end(), [&](const QueuedRequest& r) {
          return r.requester == self_ && r.stamp == q.stamp;
        }) != queue_.end()) {
      return;  // already queued
    }
    if (!q.upgrade && compatible(owned_mode(), q.mode) &&
        !(opts_.enable_freezing && frozen_.contains(q.mode))) {
      resolve_pending_with_grant(q.mode);
      pump_backlog();
      return;
    }
    enqueue(q);
    recompute_frozen_token();
    push_freeze_updates();
    return;
  }

  if (has_token_) {
    handle_request_as_token(q);
  } else {
    handle_request_as_nontoken(q);
  }
}

void HlsEngine::handle_request_as_token(const QueuedRequest& q) {
  if (!recovery_waiting_.empty()) {
    // Recovery barrier: survivor state is still arriving; anything served
    // now could conflict with a hold whose attach is in flight.
    enqueue(q);
    return;
  }
  if (q.upgrade) {
    if (try_serve_upgrade_as_token(q)) return;
    // Upgrades jump the queue (Rule 7): everything incompatible with the
    // requester's held U is younger than the U, and a queued writer would
    // otherwise deadlock against the never-released U.
    enqueue(q);
    recompute_frozen_token();
    push_freeze_updates();
    return;
  }

  const Mode mo = owned_mode();
  const bool frozen_blocks = opts_.enable_freezing && frozen_.contains(q.mode);

  if (!frozen_blocks && tokenable(mo, q.mode)) {
    transfer_token(q);
    return;
  }
  if (!frozen_blocks && token_copy_grantable(mo, q.mode)) {
    grant_copy(q);
    return;
  }
  // Rule 4.2: the token node always queues what it cannot grant.
  enqueue(q);
  recompute_frozen_token();
  push_freeze_updates();
}

void HlsEngine::handle_request_as_nontoken(const QueuedRequest& q) {
  const Mode mo = owned_mode();
  const bool frozen_blocks = opts_.enable_freezing && frozen_.contains(q.mode);

  if (opts_.allow_child_grants && !frozen_blocks &&
      child_grantable(mo, q.mode)) {
    grant_copy(q);  // Rule 3.1
    return;
  }
  if (opts_.allow_local_queues &&
      queue_or_forward(pending_mode(), q.mode) == PendingAction::kQueue) {
    enqueue(q);  // Rule 4.1 / Table 2(a)
    return;
  }
  Message fwd;
  fwd.kind = MsgKind::kRequest;
  fwd.req = q;
  send(parent_, fwd);
}

bool HlsEngine::try_serve_upgrade_as_token(const QueuedRequest& q) {
  // Rule 7: the requester keeps holding U; every *other* contribution to
  // the owned mode must drain before W can exist anywhere.
  const Mode rest = owned_mode_excluding_child(q.requester);
  if (rest != kNone) return false;
  transfer_token(q);
  return true;
}

void HlsEngine::enqueue(const QueuedRequest& q) {
  // Upgrades cluster at the front (Rule 7 precedence), FIFO among
  // themselves. The rest is FIFO, or (priority desc, stamp) when priority
  // arbitration is enabled.
  auto it = queue_.begin();
  while (it != queue_.end() && it->upgrade) ++it;
  if (!q.upgrade) {
    if (opts_.enable_priorities) {
      while (it != queue_.end() && !priority_before(q, *it)) ++it;
    } else {
      it = queue_.end();
    }
  }
  queue_.insert(it, q);
}

void HlsEngine::grant_copy(const QueuedRequest& q) {
  const auto it = children_.find(q.requester);
  const Mode prior = it == children_.end() ? kNone : it->second;
  set_child(q.requester, strongest(prior, q.mode));
  sent_frozen_[q.requester] = frozen_;
  Message g;
  g.kind = MsgKind::kGrant;
  g.mode = q.mode;
  g.frozen = frozen_;
  g.grant_seq = ++grants_sent_[q.requester];
  send(q.requester, g);
}

void HlsEngine::transfer_token(const QueuedRequest& q) {
  erase_child(q.requester);
  sent_frozen_.erase(q.requester);
  const Mode remaining = owned_mode();

  Message t;
  t.kind = MsgKind::kToken;
  t.mode = q.mode;
  t.sender_owned = remaining;
  t.queue = transport_.acquire_queue_buffer();
  t.queue.assign(queue_.begin(), queue_.end());
  queue_.clear();
  // The head-bypass streak travels with the token (grant_seq is unused by
  // kToken otherwise), so the locality fairness cap binds globally across
  // same-cluster hand-offs. Always 0 when the bias is off — bitwise
  // identical to the pre-locality wire traffic.
  t.grant_seq = locality_streak_;
  locality_streak_ = 0;

  has_token_ = false;
  parent_ = q.requester;
  // We are a plain copyset member now; the new root owns freezing. Clear
  // our set and un-freeze our subtree — the new root re-freezes potential
  // granters from the merged queue it just received.
  if (!frozen_.empty()) {
    frozen_.clear();
    freeze_sync_needed_ = true;
  }
  push_freeze_updates();

  send(q.requester, std::move(t));
}

void HlsEngine::handle_grant(const Message& m) {
  if (!pending_ || pending_->upgrade || pending_->mode != m.mode) {
    HLOCK_LOG(kError, "node " << self_ << " unexpected grant of " << m.mode);
    return;
  }
  detach_from_old_parent(m.from);
  parent_ = m.from;
  grants_received_[m.from] = m.grant_seq;
  if (opts_.enable_freezing && !(frozen_ == m.frozen)) {
    frozen_ = m.frozen;
    freeze_sync_needed_ = true;
  }
  resolve_pending_with_grant(m.mode);
  check_queue_nontoken();
  push_freeze_updates();
  pump_backlog();
}

void HlsEngine::handle_token(const Message& m) {
  if (!pending_) {
    HLOCK_LOG(kError, "node " << self_ << " unexpected token");
    return;
  }
  detach_from_old_parent(m.from);
  has_token_ = true;
  parent_ = NodeId::invalid();
  locality_streak_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(m.grant_seq, 0xffffffffULL));
  if (m.sender_owned != kNone) {
    set_child(m.from, m.sender_owned);
  }

  // Merge the shipped queue with anything we queued while non-token,
  // preserving global FIFO by Lamport stamp (footnote c of Figure 4).
  std::deque<QueuedRequest> merged;
  merged.insert(merged.end(), m.queue.begin(), m.queue.end());
  merged.insert(merged.end(), queue_.begin(), queue_.end());
  std::stable_sort(merged.begin(), merged.end(),
                   [this](const QueuedRequest& a, const QueuedRequest& b) {
                     if (opts_.enable_priorities) return priority_before(a, b);
                     return a.stamp < b.stamp;
                   });
  // Upgrades keep their Rule 7 priority across transfers.
  std::stable_partition(merged.begin(), merged.end(),
                        [](const QueuedRequest& r) { return r.upgrade; });
  // Our own in-flight request is the one the token answers; drop any echo.
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [&](const QueuedRequest& r) {
                                return r.requester == self_;
                              }),
               merged.end());
  queue_ = std::move(merged);

  if (pending_->upgrade) {
    const Mode rest = owned_mode_excluding_hold(pending_->id);
    if (rest == kNone) {
      resolve_pending_with_grant(Mode::kW);
    } else {
      // Our subtree still has granted copies out; wait for their releases
      // with the original stamp so we stay at the head of the FIFO.
      enqueue(QueuedRequest{self_, Mode::kW, pending_->stamp, true,
                            pending_->priority});
    }
  } else {
    resolve_pending_with_grant(m.mode);
  }

  check_queue_token();
  if (has_token_) {
    recompute_frozen_token();
    push_freeze_updates();
  }
  pump_backlog();
}

void HlsEngine::handle_release(const Message& m) {
  {
    const auto it = grants_sent_.find(m.from);
    const std::uint64_t sent = it == grants_sent_.end() ? 0 : it->second;
    if (m.grant_seq < sent) {
      // Stale: this release was issued before the child saw our latest
      // grant; applying it would erase the newer registration. The child
      // re-reports when its post-grant owned mode weakens.
      HLOCK_LOG(kDebug, "node " << self_ << " drops stale release from "
                                << m.from);
      return;
    }
  }
  const Mode owned_before = owned_mode();
  if (m.mode == kNone) {
    erase_child(m.from);
    sent_frozen_.erase(m.from);
  } else {
    // A weakening report may only *update* a live registration. If the
    // child is not registered any more, we already handed it the token
    // (transfer erased it) while this release was in flight; re-creating
    // the entry would forge a phantom ownership edge back to the new root.
    if (children_.find(m.from) == children_.end()) {
      HLOCK_LOG(kDebug, "node " << self_ << " ignores release from "
                                << m.from << ": not a child");
      return;
    }
    set_child(m.from, m.mode);
  }

  if (has_token_) {
    check_queue_token();
    if (has_token_) {
      recompute_frozen_token();
      push_freeze_updates();
    }
  } else {
    propagate_release_if_needed(owned_before);
    check_queue_nontoken();
  }
  pump_backlog();
}

void HlsEngine::handle_freeze(const Message& m) {
  if (!opts_.enable_freezing) return;
  if (has_token_) return;  // stale: we became root since it was sent
  if (owned_mode() == kNone) {
    // We already left the sender's copyset (our release crossed this
    // freeze in flight). A non-owner can grant nothing, and no further
    // updates would ever reach us — adopting the set would leave it
    // dangling forever.
    frozen_.clear();
    freeze_sync_needed_ = true;
    return;
  }
  if (!(frozen_ == m.frozen)) {
    frozen_ = m.frozen;
    freeze_sync_needed_ = true;
  }
  push_freeze_updates();
}

// ---------------------------------------------------------------------------
// Queue service
// ---------------------------------------------------------------------------

void HlsEngine::check_queue() {
  if (has_token_) {
    check_queue_token();
  } else {
    check_queue_nontoken();
  }
}

bool HlsEngine::token_can_serve_now(const QueuedRequest& q) const {
  if (q.upgrade) return false;  // Rule 7 entries are served head-first only
  const Mode mo = owned_mode();
  if (q.requester == self_) {
    // Mirrors the head self-entry branch: a live non-upgrade pending,
    // admissible under Rule 3.2.
    return pending_ && !pending_->upgrade && compatible(mo, q.mode);
  }
  return tokenable(mo, q.mode) || token_copy_grantable(mo, q.mode);
}

std::size_t HlsEngine::pick_queue_index() const {
  if (!opts_.locality_bias || clusters_ == nullptr) return 0;
  if (locality_streak_ >= opts_.locality_fairness_cap) return 0;
  // Upgrades cluster at the queue front and are never reordered across;
  // past a non-upgrade head the queue holds no upgrade entries.
  if (queue_.front().upgrade) return 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const QueuedRequest& q = queue_[i];
    if (!clusters_->same_cluster(q.requester, self_)) continue;
    if (token_can_serve_now(q)) return i;
  }
  return 0;
}

void HlsEngine::check_queue_token() {
  if (!recovery_waiting_.empty()) return;  // recovery barrier open
  // Figure 4 "Check requests on queue": serve strictly head-first and stop
  // at the first request that cannot be served. Frozen modes are NOT
  // considered here — freezing protects queued requests from *newer*
  // arrivals, and the head is the oldest waiter (§4, Fig. 7 discussion).
  //
  // With EngineOptions::locality_bias a servable same-cluster entry may
  // be served ahead of the (remote or currently blocked) head while the
  // bypass streak is under the fairness cap; every strict head service
  // resets the streak, and the streak rides the token (transfer_token),
  // so a bypassed head waits at most `locality_fairness_cap` out-of-order
  // services in total, no matter how often the token moves inside the
  // cluster. Biased picks skip the frozen check exactly like head service
  // does: everything in the queue predates any freeze it caused.
  while (has_token_ && !queue_.empty()) {
    const std::size_t pick = pick_queue_index();
    if (pick != 0) {
      const QueuedRequest q = queue_[pick];
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
      ++locality_streak_;
      if (q.requester == self_) {
        resolve_pending_with_grant(q.mode);
        continue;
      }
      if (tokenable(owned_mode(), q.mode)) {
        transfer_token(q);  // same-cluster hand-off; streak ships along
        return;             // no longer the token node
      }
      grant_copy(q);
      continue;
    }

    const QueuedRequest q = queue_.front();
    const Mode mo = owned_mode();

    if (q.requester == self_) {
      if (q.upgrade) {
        if (!pending_ || !upgrading_hold_) {
          queue_.pop_front();  // stale entry
          continue;
        }
        if (owned_mode_excluding_hold(pending_->id) != kNone) break;
        queue_.pop_front();
        locality_streak_ = 0;
        resolve_pending_with_grant(Mode::kW);
        continue;
      }
      if (!pending_) {
        queue_.pop_front();  // stale entry
        continue;
      }
      if (!compatible(mo, q.mode)) break;
      queue_.pop_front();
      locality_streak_ = 0;
      resolve_pending_with_grant(q.mode);
      continue;
    }

    if (q.upgrade) {
      if (owned_mode_excluding_child(q.requester) != kNone) break;
      queue_.pop_front();
      locality_streak_ = 0;
      transfer_token(q);
      return;  // no longer the token node
    }
    if (tokenable(mo, q.mode)) {
      queue_.pop_front();
      locality_streak_ = 0;
      transfer_token(q);
      return;  // no longer the token node
    }
    if (token_copy_grantable(mo, q.mode)) {
      queue_.pop_front();
      locality_streak_ = 0;
      grant_copy(q);
      continue;
    }
    break;
  }
}

void HlsEngine::check_queue_nontoken() {
  if (queue_.empty()) return;
  // Re-triage every queued request: grant what Rule 3.1 now allows, keep
  // what Table 2(a) still queues, forward the rest toward the root.
  std::deque<QueuedRequest> keep;
  while (!queue_.empty()) {
    const QueuedRequest q = queue_.front();
    queue_.pop_front();
    const Mode mo = owned_mode();
    const bool frozen_blocks =
        opts_.enable_freezing && frozen_.contains(q.mode);
    if (opts_.allow_child_grants && !frozen_blocks && !q.upgrade &&
        child_grantable(mo, q.mode)) {
      grant_copy(q);
      continue;
    }
    if (opts_.allow_local_queues && !q.upgrade &&
        queue_or_forward(pending_mode(), q.mode) == PendingAction::kQueue) {
      keep.push_back(q);
      continue;
    }
    Message fwd;
    fwd.kind = MsgKind::kRequest;
    fwd.req = q;
    send(parent_, fwd);
  }
  queue_ = std::move(keep);
}

void HlsEngine::detach_from_old_parent(NodeId new_parent) {
  // Re-parenting: our whole subtree is now accounted under the new parent
  // (grant) or counts directly as the root's own state (token). If the old
  // parent still carried us in its copyset, that record would go stale
  // forever — releases only travel to the *current* parent — leaving
  // phantom owned modes (and, transitively, ownership cycles) behind.
  // Telling the old parent we left keeps Def. 3 accounting exact.
  if (!parent_.valid() || parent_ == new_parent) return;
  if (owned_mode() == kNone) return;  // old parent erased us already
  Message r;
  r.kind = MsgKind::kRelease;
  r.mode = kNone;
  r.grant_seq = grants_received_[parent_];
  send(parent_, r);
}

// ---------------------------------------------------------------------------
// Releases
// ---------------------------------------------------------------------------

void HlsEngine::propagate_release_if_needed(Mode owned_before) {
  if (has_token_) return;
  const Mode now = owned_mode();
  const bool weakened = strength(now) < strength(owned_before);
  if (!weakened && opts_.lazy_release) return;  // Rule 5.2
  Message r;
  r.kind = MsgKind::kRelease;
  r.mode = now;
  r.grant_seq = grants_received_[parent_];
  send(parent_, r);
  if (now == kNone) {
    // We left the copyset entirely; frozen-set upkeep no longer reaches us.
    frozen_.clear();
    sent_frozen_.clear();
    freeze_sync_needed_ = true;
  }
}

// ---------------------------------------------------------------------------
// Freezing (Rule 6 / Table 2(b))
// ---------------------------------------------------------------------------

void HlsEngine::recompute_frozen_token() {
  if (!opts_.enable_freezing) return;
  if (!has_token_) return;
  ModeSet fresh;
  const Mode mo = owned_mode();
  for (const QueuedRequest& q : queue_) fresh |= frozen_for(mo, q.mode);
  if (!(fresh == frozen_)) {
    frozen_ = fresh;
    freeze_sync_needed_ = true;
  }
}

bool HlsEngine::is_potential_granter(Mode child_owned, ModeSet modes) const {
  for (const Mode m : kRealModes) {
    if (modes.contains(m) && child_grantable(child_owned, m)) return true;
  }
  return false;
}

void HlsEngine::push_freeze_updates() {
  if (!opts_.enable_freezing) return;
  // The last push left every child's sent set equal to its target, and the
  // inputs (children_, frozen_, sent_frozen_) are unchanged since — the
  // scan below would send nothing.
  if (!freeze_sync_needed_) return;
  freeze_sync_needed_ = false;
  for (const auto& [child, mode] : children_) {
    ModeSet target;
    if (is_potential_granter(mode, frozen_)) target = frozen_;
    auto it = sent_frozen_.find(child);
    const ModeSet last = it == sent_frozen_.end() ? ModeSet{} : it->second;
    if (last == target) continue;
    sent_frozen_[child] = target;
    Message f;
    f.kind = MsgKind::kFreeze;
    f.frozen = target;
    send(child, f);
  }
}

}  // namespace hlock::core
