#include "core/hls_node.hpp"

#include <stdexcept>

namespace hlock::core {

HlsNode::HlsNode(NodeId self, Transport& transport, EngineOptions opts)
    : self_(self), transport_(transport), opts_(opts) {}

HlsEngine& HlsNode::add_lock(LockId lock, NodeId initial_holder,
                             NodeId initial_parent) {
  EngineCallbacks cbs;
  cbs.on_acquired = [this, lock](RequestId id, Mode mode) {
    if (on_acquired_) on_acquired_(lock, id, mode);
  };
  cbs.on_upgraded = [this, lock](RequestId id) {
    if (on_upgraded_) on_upgraded_(lock, id);
  };
  auto engine =
      std::make_unique<HlsEngine>(lock, self_, initial_holder, transport_,
                                  opts_, std::move(cbs), initial_parent);
  engine->set_cluster_map(cluster_map_);
  if (recovery_view_ != 0) {
    // Materialized after a recovery: adopt the committed view or every
    // live message (stamped with it) would be fenced off. The root joins
    // with an empty barrier — survivors with pre-crash state for this
    // lock would have materialized it already (see begin_recovery).
    const std::set<NodeId> scope = self_ == recovery_root_
                                       ? std::set<NodeId>{self_}
                                       : recovery_survivors_;
    engine->begin_recovery(recovery_view_, recovery_root_, scope);
  }
  auto [it, inserted] = engines_.emplace(lock, std::move(engine));
  if (!inserted) throw std::logic_error("lock added twice");
  if (lock.value < kDenseLockLimit) {
    if (lock.value >= dense_.size()) dense_.resize(lock.value + 1, nullptr);
    dense_[lock.value] = it->second.get();
  }
  return *it->second;
}

HlsEngine& HlsNode::engine(LockId lock) {
  if (lock.value < dense_.size() && dense_[lock.value] != nullptr)
    return *dense_[lock.value];
  const auto it = engines_.find(lock);
  if (it != engines_.end()) return *it->second;
  if (lazy_holder_) return add_lock(lock, lazy_holder_(lock));
  throw std::logic_error("unknown lock");
}

const HlsEngine* HlsNode::find(LockId lock) const {
  if (lock.value < dense_.size() && dense_[lock.value] != nullptr)
    return dense_[lock.value];
  const auto it = engines_.find(lock);
  return it == engines_.end() ? nullptr : it->second.get();
}

void HlsNode::set_cluster_map(const ClusterMap* map) {
  cluster_map_ = map;
  for (auto& [lock, eng] : engines_) eng->set_cluster_map(map);
}

void HlsNode::begin_recovery(std::uint32_t view, NodeId new_root,
                             const std::set<NodeId>& survivors) {
  recovery_view_ = view;
  recovery_root_ = new_root;
  recovery_survivors_ = survivors;
  for (auto& [lock, eng] : engines_) {
    if (eng->departed()) continue;
    eng->begin_recovery(view, new_root, survivors);
  }
}

void HlsNode::handle(const Message& m) { engine(m.lock).handle(m); }

}  // namespace hlock::core
