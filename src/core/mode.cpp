#include "core/mode.hpp"

#include <ostream>

namespace hlock {

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kNone: return "-";
    case Mode::kIR: return "IR";
    case Mode::kR: return "R";
    case Mode::kU: return "U";
    case Mode::kIW: return "IW";
    case Mode::kW: return "W";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Mode m) {
  return os << to_string(m);
}

std::string ModeSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const Mode m : kRealModes) {
    if (!contains(m)) continue;
    if (!first) out += ",";
    out += hlock::to_string(m);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace hlock
