// Lock modes and the four rule tables of Desai & Mueller (ICDCS 2003).
//
// The paper defines five CORBA Concurrency Service lock modes plus the
// "no lock" mode:
//
//   ∅ < IR < R < U = IW < W            (strength order, Eq. 1)
//
// and drives the whole protocol off four lookup tables:
//   Table 1(a) — mode compatibility,
//   Table 1(b) — which owned modes let a NON-token node grant a request
//                (derived from Rule 3.1: compatible ∧ owned ≥ requested),
//   Table 2(a) — queue locally vs forward to parent when a non-token node
//                with a pending request cannot grant (Rule 4.1),
//   Table 2(b) — which modes the token node freezes when it queues an
//                incompatible request (Rule 6); closed form
//                frozen(M1,M2) = { m : compat(m,M1) ∧ ¬compat(m,M2) }.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>

namespace hlock {

/// Lock access mode. kNone represents "no lock owned/held" (∅ in the paper).
enum class Mode : std::uint8_t {
  kNone = 0,  ///< ∅ — no lock
  kIR = 1,    ///< intention read
  kR = 2,     ///< read (shared)
  kU = 3,     ///< upgrade (exclusive read, upgradeable to W)
  kIW = 4,    ///< intention write
  kW = 5,     ///< write (exclusive)
};

inline constexpr int kModeCount = 6;
/// The five real (non-∅) modes, in strength order.
inline constexpr Mode kRealModes[5] = {Mode::kIR, Mode::kR, Mode::kU,
                                       Mode::kIW, Mode::kW};

const char* to_string(Mode m);
std::ostream& operator<<(std::ostream& os, Mode m);

/// Strength rank per Eq. 1 (∅=0, IR=1, R=2, U=IW=3, W=4). A stronger mode
/// is compatible with fewer modes.
constexpr int strength(Mode m) {
  constexpr int kRank[kModeCount] = {0, 1, 2, 3, 3, 4};
  return kRank[static_cast<int>(m)];
}

/// strength(a) >= strength(b). Note U and IW compare equal.
constexpr bool stronger_or_equal(Mode a, Mode b) {
  return strength(a) >= strength(b);
}

/// The stronger of two modes. For the U/IW tie the first argument wins;
/// owned-mode computations never depend on which of the pair is reported
/// because both behave identically in every strength comparison.
constexpr Mode strongest(Mode a, Mode b) {
  return strength(a) >= strength(b) ? a : b;
}

/// Table 1(a): true iff a and b may be held concurrently. kNone is
/// compatible with everything.
constexpr bool compatible(Mode a, Mode b) {
  // Row-major [a][b]; 1 = compatible. Derived from the OMG Concurrency
  // Service conflict table the paper cites as [6].
  constexpr bool kCompat[kModeCount][kModeCount] = {
      //               ∅  IR  R  U  IW  W
      /* ∅  */ {1, 1, 1, 1, 1, 1},
      /* IR */ {1, 1, 1, 1, 1, 0},
      /* R  */ {1, 1, 1, 1, 0, 0},
      /* U  */ {1, 1, 1, 0, 0, 0},
      /* IW */ {1, 1, 0, 0, 1, 0},
      /* W  */ {1, 0, 0, 0, 0, 0},
  };
  return kCompat[static_cast<int>(a)][static_cast<int>(b)];
}

/// Small value-type set of modes (bitmask). Used for frozen-mode sets.
class ModeSet {
 public:
  constexpr ModeSet() = default;
  constexpr ModeSet(std::initializer_list<Mode> modes) {
    for (const Mode m : modes) insert(m);
  }

  constexpr void insert(Mode m) {
    bits_ |= static_cast<std::uint8_t>(1u << static_cast<int>(m));
  }
  constexpr void erase(Mode m) {
    bits_ &= static_cast<std::uint8_t>(~(1u << static_cast<int>(m)));
  }
  [[nodiscard]] constexpr bool contains(Mode m) const {
    return (bits_ & (1u << static_cast<int>(m))) != 0;
  }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }
  [[nodiscard]] constexpr std::size_t size() const {
    return static_cast<std::size_t>(__builtin_popcount(bits_));
  }
  constexpr void clear() { bits_ = 0; }

  constexpr ModeSet& operator|=(ModeSet other) {
    bits_ |= other.bits_;
    return *this;
  }
  friend constexpr ModeSet operator|(ModeSet a, ModeSet b) {
    a |= b;
    return a;
  }
  friend constexpr ModeSet operator&(ModeSet a, ModeSet b) {
    a.bits_ &= b.bits_;
    return a;
  }
  friend constexpr bool operator==(ModeSet a, ModeSet b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(ModeSet a, ModeSet b) {
    return a.bits_ != b.bits_;
  }

  /// True iff every member of this set is a subset of `other`.
  [[nodiscard]] constexpr bool subset_of(ModeSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  [[nodiscard]] constexpr std::uint8_t raw() const { return bits_; }
  static constexpr ModeSet from_raw(std::uint8_t bits) {
    ModeSet s;
    s.bits_ = bits & 0x3f;
    return s;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::uint8_t bits_{0};
};

/// Table 1(b) / Rule 3.1: may a NON-token node that owns `owned` grant a
/// request for `req`? (Freezing, Rule 6, is checked separately.)
constexpr bool child_grantable(Mode owned, Mode req) {
  return compatible(owned, req) && stronger_or_equal(owned, req);
}

/// Rule 3.2, copy-grant half: the token node owning `owned` grants a copy
/// when modes are compatible and owned ≥ req.
constexpr bool token_copy_grantable(Mode owned, Mode req) {
  return compatible(owned, req) && stronger_or_equal(owned, req);
}

/// Rule 3.2, transfer half: the token node hands the token over when modes
/// are compatible and owned < req.
constexpr bool tokenable(Mode owned, Mode req) {
  return compatible(owned, req) && !stronger_or_equal(owned, req);
}

/// True iff a hold may be atomically replaced by `to` without consulting
/// anyone: every mode compatible with `from` must also be compatible with
/// `to`, so no concurrent holder can be invalidated. (e.g. W->R, U->R,
/// R->IR are safe; U->IW is NOT: a concurrent R holder is compatible with
/// U but conflicts with IW.)
constexpr bool safe_downgrade(Mode from, Mode to) {
  for (const Mode m : kRealModes) {
    if (compatible(m, from) && !compatible(m, to)) return false;
  }
  return true;
}

/// Decision for Table 2(a).
enum class PendingAction : std::uint8_t { kForward, kQueue };

/// Table 2(a) / Rule 4.1: a non-token node with a pending request for
/// `pending` (possibly kNone) receives a request for `req` it cannot
/// grant — queue it locally or forward it to the parent?
constexpr PendingAction queue_or_forward(Mode pending, Mode req) {
  constexpr bool kQueueIt[kModeCount][kModeCount] = {
      // req:          ∅  IR  R  U  IW  W          (pending = row)
      /* ∅  */ {0, 0, 0, 0, 0, 0},
      /* IR */ {0, 1, 0, 0, 0, 0},
      /* R  */ {0, 0, 1, 0, 0, 0},
      /* U  */ {0, 0, 0, 1, 1, 1},
      /* IW */ {0, 0, 0, 0, 1, 0},
      /* W  */ {0, 1, 1, 1, 1, 1},
  };
  return kQueueIt[static_cast<int>(pending)][static_cast<int>(req)]
             ? PendingAction::kQueue
             : PendingAction::kForward;
}

/// Table 2(b) / Rule 6: the set of modes frozen at the token node when it
/// owns `owned` and queues an (incompatible) request for `queued`:
/// every mode still grantable under `owned` that would delay `queued`.
constexpr ModeSet frozen_for(Mode owned, Mode queued) {
  ModeSet out;
  for (const Mode m : kRealModes) {
    if (compatible(m, owned) && !compatible(m, queued)) out.insert(m);
  }
  return out;
}

}  // namespace hlock
